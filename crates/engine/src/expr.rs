//! Simple row predicates.
//!
//! The engine does not ship a SQL parser — MADlib's macro-programming layer
//! only needs scans, filters, aggregates and temp tables, all of which have
//! programmatic equivalents here.  [`Predicate`] covers the `WHERE` clauses
//! the method drivers actually issue (equality / comparison on a column,
//! conjunction, negation).

use crate::chunk::{ColumnChunk, RowChunk, SelectionMask};
use crate::error::{EngineError, Result};
use crate::group::GroupKey;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// A boolean-valued expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    /// Named column equals the given value (SQL `=`; NULL never matches).
    ColumnEquals {
        /// Column name.
        column: String,
        /// Comparison value.
        value: Value,
    },
    /// Named numeric column is strictly greater than the threshold.
    ColumnGreaterThan {
        /// Column name.
        column: String,
        /// Threshold.
        threshold: f64,
    },
    /// Named numeric column is strictly less than the threshold.
    ColumnLessThan {
        /// Column name.
        column: String,
        /// Threshold.
        threshold: f64,
    },
    /// Named column is NULL.
    ColumnIsNull {
        /// Column name.
        column: String,
    },
    /// Named column's *group key* equals the given key — SQL's
    /// `IS NOT DISTINCT FROM` with the grouping semantics of
    /// [`crate::group::GroupKey`]: NULL matches NULL, NaN matches NaN, and
    /// `-0.0` / `0.0` are distinct.  This is the predicate that selects
    /// exactly the rows of one group produced by a grouped scan, which plain
    /// [`Predicate::ColumnEquals`] cannot do for NULL or NaN keys.
    ColumnIs {
        /// Column name.
        column: String,
        /// The group key to match.
        key: GroupKey,
    },
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for [`Predicate::ColumnEquals`].
    pub fn column_eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::ColumnEquals {
            column: column.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`Predicate::ColumnGreaterThan`].
    pub fn column_gt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::ColumnGreaterThan {
            column: column.into(),
            threshold,
        }
    }

    /// Convenience constructor for [`Predicate::ColumnLessThan`].
    pub fn column_lt(column: impl Into<String>, threshold: f64) -> Self {
        Predicate::ColumnLessThan {
            column: column.into(),
            threshold,
        }
    }

    /// Convenience constructor for [`Predicate::ColumnIs`]: matches rows
    /// whose group key equals the key of `value` (NULL matches NULL, NaN
    /// matches NaN, `-0.0` and `0.0` are distinct).
    pub fn column_is(column: impl Into<String>, value: &Value) -> Self {
        Predicate::ColumnIs {
            column: column.into(),
            key: GroupKey::from_value(value),
        }
    }

    /// Convenience constructor for [`Predicate::ColumnIs`] from an already-
    /// derived [`GroupKey`] (e.g. one returned by a grouped scan).
    pub fn column_is_key(column: impl Into<String>, key: GroupKey) -> Self {
        Predicate::ColumnIs {
            column: column.into(),
            key,
        }
    }

    /// Conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against a row.
    ///
    /// # Errors
    /// Propagates column-lookup and numeric-coercion errors.
    pub fn evaluate(&self, row: &Row, schema: &Schema) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::ColumnEquals { column, value } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() || value.is_null() {
                    return Ok(false);
                }
                Ok(v == value)
            }
            Predicate::ColumnGreaterThan { column, threshold } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(v.as_double()? > *threshold)
            }
            Predicate::ColumnLessThan { column, threshold } => {
                let v = row.get_named(schema, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(v.as_double()? < *threshold)
            }
            Predicate::ColumnIsNull { column } => Ok(row.get_named(schema, column)?.is_null()),
            Predicate::ColumnIs { column, key } => {
                Ok(GroupKey::from_value(row.get_named(schema, column)?) == *key)
            }
            Predicate::And(a, b) => Ok(a.evaluate(row, schema)? && b.evaluate(row, schema)?),
            Predicate::Or(a, b) => Ok(a.evaluate(row, schema)? || b.evaluate(row, schema)?),
            Predicate::Not(p) => Ok(!p.evaluate(row, schema)?),
        }
    }

    /// Evaluates the predicate over a whole column-major chunk at once,
    /// returning one selection bit per row.
    ///
    /// This is the filter hoisted out of the per-row transition loop: scalar
    /// comparisons run over contiguous column slices and boolean combinators
    /// become bitmask operations.  Results match [`Predicate::evaluate`] row
    /// for row, with one deliberate difference: `And`/`Or` evaluate both
    /// sides over the full chunk (no per-row short-circuiting), so a
    /// type-error in the right-hand side surfaces even for rows where the
    /// left-hand side already decided the outcome.
    ///
    /// # Errors
    /// Propagates column-lookup and numeric-coercion errors.
    pub fn evaluate_chunk(&self, chunk: &RowChunk, schema: &Schema) -> Result<SelectionMask> {
        let rows = chunk.len();
        match self {
            Predicate::True => Ok(SelectionMask::all(rows)),
            Predicate::ColumnEquals { column, value } => {
                let idx = schema.index_of(column)?;
                if value.is_null() {
                    return Ok(SelectionMask::none(rows));
                }
                let mut mask = SelectionMask::none(rows);
                match (chunk.column(idx), value) {
                    (ColumnChunk::Double { values, nulls }, Value::Double(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (ColumnChunk::Int { values, nulls }, Value::Int(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (ColumnChunk::Bool { values, nulls }, Value::Bool(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (ColumnChunk::Text { values, nulls }, Value::Text(t)) => {
                        for (i, v) in values.iter().enumerate() {
                            if !nulls.is_null(i) && v == t {
                                mask.set(i, true);
                            }
                        }
                    }
                    (other, _) => {
                        // Cross-type comparison or array column: materialize
                        // per row (rare in practice).
                        let nulls = other.nulls();
                        for i in 0..rows {
                            if !nulls.is_null(i) && &other.value(i) == value {
                                mask.set(i, true);
                            }
                        }
                    }
                }
                Ok(mask)
            }
            Predicate::ColumnGreaterThan { column, threshold } => {
                numeric_comparison_mask(chunk, schema, column, |v| v > *threshold)
            }
            Predicate::ColumnLessThan { column, threshold } => {
                numeric_comparison_mask(chunk, schema, column, |v| v < *threshold)
            }
            Predicate::ColumnIsNull { column } => {
                let idx = schema.index_of(column)?;
                let nulls = chunk.column(idx).nulls();
                let mut mask = SelectionMask::none(rows);
                for i in 0..rows {
                    if nulls.is_null(i) {
                        mask.set(i, true);
                    }
                }
                Ok(mask)
            }
            Predicate::ColumnIs { column, key } => {
                let idx = schema.index_of(column)?;
                let column = chunk.column(idx);
                let mut mask = SelectionMask::none(rows);
                for i in 0..rows {
                    if key.matches_column(column, i) {
                        mask.set(i, true);
                    }
                }
                Ok(mask)
            }
            Predicate::And(a, b) => {
                let mut mask = a.evaluate_chunk(chunk, schema)?;
                mask.and_with(&b.evaluate_chunk(chunk, schema)?);
                Ok(mask)
            }
            Predicate::Or(a, b) => {
                let mut mask = a.evaluate_chunk(chunk, schema)?;
                mask.or_with(&b.evaluate_chunk(chunk, schema)?);
                Ok(mask)
            }
            Predicate::Not(p) => {
                let mut mask = p.evaluate_chunk(chunk, schema)?;
                mask.negate();
                Ok(mask)
            }
        }
    }
}

/// Vectorized `column <op> threshold` over a numeric column.  NULL rows never
/// match; non-numeric columns raise the same type error the per-row path
/// raises when it reads a non-null value (and stay silent when the column is
/// entirely NULL, again matching the per-row path).
fn numeric_comparison_mask(
    chunk: &RowChunk,
    schema: &Schema,
    column: &str,
    accept: impl Fn(f64) -> bool,
) -> Result<SelectionMask> {
    let idx = schema.index_of(column)?;
    let rows = chunk.len();
    let mut mask = SelectionMask::none(rows);
    match chunk.column(idx) {
        ColumnChunk::Double { values, nulls } => {
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) && accept(*v) {
                    mask.set(i, true);
                }
            }
        }
        ColumnChunk::Int { values, nulls } => {
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) && accept(*v as f64) {
                    mask.set(i, true);
                }
            }
        }
        ColumnChunk::Bool { values, nulls } => {
            for (i, v) in values.iter().enumerate() {
                if !nulls.is_null(i) && accept(if *v { 1.0 } else { 0.0 }) {
                    mask.set(i, true);
                }
            }
        }
        other => {
            if other.nulls().null_count() < rows {
                return Err(EngineError::TypeMismatch {
                    expected: "double precision",
                    found: other.type_name().to_owned(),
                });
            }
        }
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("label", ColumnType::Text),
            Column::new("score", ColumnType::Double),
        ])
    }

    #[test]
    fn comparison_predicates() {
        let s = schema();
        let r = row!["spam", 0.8];
        assert!(Predicate::column_eq("label", "spam")
            .evaluate(&r, &s)
            .unwrap());
        assert!(!Predicate::column_eq("label", "ham")
            .evaluate(&r, &s)
            .unwrap());
        assert!(Predicate::column_gt("score", 0.5).evaluate(&r, &s).unwrap());
        assert!(Predicate::column_lt("score", 0.9).evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_lt("score", 0.8).evaluate(&r, &s).unwrap());
        assert!(Predicate::True.evaluate(&r, &s).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row!["spam", 0.8];
        let p = Predicate::column_eq("label", "spam").and(Predicate::column_gt("score", 0.5));
        assert!(p.evaluate(&r, &s).unwrap());
        let q = Predicate::column_eq("label", "ham").or(Predicate::column_gt("score", 0.5));
        assert!(q.evaluate(&r, &s).unwrap());
        assert!(!q.not().evaluate(&r, &s).unwrap());
    }

    #[test]
    fn null_handling() {
        let s = schema();
        let r = Row::new(vec![Value::Null, Value::Null]);
        assert!(!Predicate::column_eq("label", "spam")
            .evaluate(&r, &s)
            .unwrap());
        assert!(!Predicate::column_gt("score", 0.0).evaluate(&r, &s).unwrap());
        assert!(!Predicate::column_lt("score", 0.0).evaluate(&r, &s).unwrap());
        assert!(Predicate::ColumnIsNull {
            column: "score".into()
        }
        .evaluate(&r, &s)
        .unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let r = row!["x", 1.0];
        assert!(Predicate::column_eq("nope", 1.0).evaluate(&r, &s).is_err());
    }
}
