//! The database: a catalog of named tables plus temp-table support.
//!
//! The driver-function pattern from the paper (Section 3.1.2, Figure 3)
//! stages inter-iteration state in temporary tables created with
//! `CREATE TEMP TABLE ... AS SELECT ...` so that "all large-data movement is
//! done within the database engine".  [`Database`] provides that catalog:
//! regular tables, temp tables (dropped on [`Database::drop_temp_tables`]),
//! and a default segment count that new tables inherit (the analogue of the
//! cluster's segment configuration).
//!
//! # Locking
//!
//! The catalog map itself is guarded by one `RwLock`, but each table lives
//! behind its **own** `Arc<RwLock<Table>>`: catalog operations (create,
//! drop, lookup) take the catalog lock only long enough to touch the map,
//! and every table read or mutation happens under that table's private
//! lock.  A long append to table A therefore never blocks a snapshot read
//! of table B — the failure mode of the earlier design, where
//! [`Database::with_table_mut`] held the catalog-wide write lock for its
//! closure's full duration.
//!
//! # Snapshot isolation
//!
//! [`Database::table`] and [`Database::dataset`] return a *snapshot*: a
//! clone of the table taken under its read lock.  Because a
//! [`crate::chunk::Segment`]'s chunks sit behind `Arc`, the clone shares
//! every sealed chunk buffer with the cataloged table (pointer identity, no
//! copy) and only the open tail chunk is copied lazily when a later append
//! mutates it (`Arc::make_mut`).  Appends committed *after* the snapshot
//! was taken are never visible to it, and the snapshot stays valid after
//! the table is dropped — the read-committed snapshot semantics the paper's
//! method drivers assume of `source_table`.

use crate::catalog::ModelCatalog;
use crate::error::{EngineError, Result};
use crate::materialize::AnyMaterialized;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::{Distribution, Table};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Clone)]
struct CatalogEntry {
    table: Arc<RwLock<Table>>,
    is_temp: bool,
}

/// A registered materialized aggregate: the type-erased incremental state
/// plus the source table it watches.
struct ViewEntry {
    source: String,
    state: Arc<Mutex<Box<dyn AnyMaterialized>>>,
}

/// An in-memory database: named tables partitioned across a configurable
/// number of segments.
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<HashMap<String, CatalogEntry>>>,
    views: Arc<RwLock<HashMap<String, ViewEntry>>>,
    models: ModelCatalog,
    temp_counter: Arc<AtomicU64>,
    num_segments: usize,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("num_segments", &self.num_segments)
            .field("tables", &self.list_tables().len())
            .finish_non_exhaustive()
    }
}

/// Recovers a read guard from a poisoned lock: catalog and table mutations
/// cannot leave their data half-written, so propagating the panic as a
/// second panic would only lose information.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Database {
    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, CatalogEntry>> {
        read_lock(&self.inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, CatalogEntry>> {
        write_lock(&self.inner)
    }

    /// Looks up a table's lock handle, holding the catalog lock only for the
    /// map probe.
    fn entry(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.read()
            .get(name)
            .map(|e| Arc::clone(&e.table))
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })
    }

    /// Creates a database whose tables default to `num_segments` partitions.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSegmentCount`] when `num_segments == 0`.
    pub fn new(num_segments: usize) -> Result<Self> {
        if num_segments == 0 {
            return Err(EngineError::InvalidSegmentCount { requested: 0 });
        }
        Ok(Self {
            inner: Arc::new(RwLock::new(HashMap::new())),
            views: Arc::new(RwLock::new(HashMap::new())),
            models: ModelCatalog::new(),
            temp_counter: Arc::new(AtomicU64::new(1)),
            num_segments,
        })
    }

    /// Default segment count for new tables.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// The database's model catalog: named, typed storage for trained models
    /// (single or per-group), shared by all clones of this handle exactly
    /// like the table catalog.
    pub fn models(&self) -> &ModelCatalog {
        &self.models
    }

    /// Creates an empty (regular) table.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.create_internal(name, schema, Distribution::RoundRobin, false)
    }

    /// Creates an empty table with an explicit distribution policy.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision or a
    /// distribution error.
    pub fn create_table_distributed(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
    ) -> Result<()> {
        self.create_internal(name, schema, distribution, false)
    }

    /// Creates an empty temp table (`CREATE TEMP TABLE`).  Temp tables behave
    /// exactly like regular tables but are dropped by
    /// [`Database::drop_temp_tables`], which method drivers call when an
    /// iteration completes.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn create_temp_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.create_internal(name, schema, Distribution::RoundRobin, true)
    }

    /// Creates an empty temp table under `base` or, when that name is taken,
    /// `base_<n>` for a database-wide monotonic counter `n` — returning the
    /// name actually used.  Probe and create happen under one catalog write
    /// lock, so concurrent callers (e.g. parallel per-group iterative fits
    /// sharing an iteration-state base name) always receive distinct tables.
    ///
    /// The counter advances monotonically and is never reused, so a burst of
    /// k concurrent fits costs O(k) probes total — the earlier
    /// `base_1, base_2, ...` linear re-probe was O(k²) across many live
    /// per-group iteration tables and could collide semantically with a
    /// same-named regular table that happened to end in `_<i>`.
    ///
    /// # Errors
    /// Propagates table-construction errors.
    pub fn create_unique_temp_table(&self, base: &str, schema: Schema) -> Result<String> {
        let mut catalog = self.write();
        let name = if catalog.contains_key(base) {
            loop {
                let n = self.temp_counter.fetch_add(1, Ordering::Relaxed);
                let candidate = format!("{base}_{n}");
                if !catalog.contains_key(&candidate) {
                    break candidate;
                }
            }
        } else {
            base.to_owned()
        };
        let table = Table::with_distribution(schema, self.num_segments, Distribution::RoundRobin)?;
        catalog.insert(
            name.clone(),
            CatalogEntry {
                table: Arc::new(RwLock::new(table)),
                is_temp: true,
            },
        );
        Ok(name)
    }

    fn create_internal(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
        is_temp: bool,
    ) -> Result<()> {
        let mut catalog = self.write();
        if catalog.contains_key(name) {
            return Err(EngineError::TableAlreadyExists {
                name: name.to_owned(),
            });
        }
        let table = Table::with_distribution(schema, self.num_segments, distribution)?;
        catalog.insert(
            name.to_owned(),
            CatalogEntry {
                table: Arc::new(RwLock::new(table)),
                is_temp,
            },
        );
        Ok(())
    }

    /// Registers an already-populated table under `name` (the programmatic
    /// equivalent of `CREATE TABLE ... AS SELECT`).
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        let mut catalog = self.write();
        if catalog.contains_key(name) {
            return Err(EngineError::TableAlreadyExists {
                name: name.to_owned(),
            });
        }
        catalog.insert(
            name.to_owned(),
            CatalogEntry {
                table: Arc::new(RwLock::new(table)),
                is_temp: false,
            },
        );
        Ok(())
    }

    /// Returns a snapshot of the named table.
    ///
    /// The snapshot is taken under the table's read lock and is **cheap**:
    /// sealed chunk buffers are shared with the cataloged table by `Arc`
    /// (pointer identity, no copy); only segment/chunk bookkeeping is
    /// cloned.  Appends committed after this call are invisible to the
    /// snapshot, and the snapshot outlives a later `drop_table` — see the
    /// module-level *Snapshot isolation* notes.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn table(&self, name: &str) -> Result<Table> {
        let entry = self.entry(name)?;
        let guard = read_lock(&entry);
        Ok(guard.clone())
    }

    /// Whether the named table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Lists table names (sorted) together with their temp status.
    pub fn list_tables(&self) -> Vec<(String, bool)> {
        let mut names: Vec<(String, bool)> = self
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.is_temp))
            .collect();
        names.sort();
        names
    }

    /// Applies a mutation to the named table in place (insert rows, truncate,
    /// etc.).
    ///
    /// Only the named table's own write lock is held while `mutate` runs —
    /// reads and writes of *other* tables proceed concurrently.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name and
    /// propagates errors from the mutation closure.
    pub fn with_table_mut<T>(
        &self,
        name: &str,
        mutate: impl FnOnce(&mut Table) -> Result<T>,
    ) -> Result<T> {
        let entry = self.entry(name)?;
        let mut guard = write_lock(&entry);
        mutate(&mut guard)
    }

    /// Appends rows to the named table and advances every materialized
    /// aggregate registered on it (each absorbs exactly the newly appended
    /// rows via its chunk watermark — history is not rescanned).
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name and
    /// propagates insert / transition errors.
    pub fn append_rows(&self, name: &str, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        self.with_table_mut(name, |t| {
            for row in rows {
                t.insert(row)?;
            }
            Ok(())
        })?;
        self.absorb_views_of(name)
    }

    /// Replaces the contents of the named table with `table` (the
    /// `CREATE TABLE AS SELECT` + `DROP TABLE` pattern the paper recommends
    /// over large `UPDATE`s in PostgreSQL, Section 4.3).
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn replace_table(&self, name: &str, table: Table) -> Result<()> {
        let entry = self.entry(name)?;
        let mut guard = write_lock(&entry);
        *guard = table;
        Ok(())
    }

    /// Drops the named table.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut catalog = self.write();
        catalog
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })
    }

    /// Drops all temp tables, returning how many were removed.
    pub fn drop_temp_tables(&self) -> usize {
        let mut catalog = self.write();
        let before = catalog.len();
        catalog.retain(|_, e| !e.is_temp);
        before - catalog.len()
    }

    /// Registers a materialized aggregate under `view`, watching `source`,
    /// replacing any previous view of the same name (`CREATE OR REPLACE`
    /// semantics, matching [`ModelCatalog::register`]).  The state should
    /// already have absorbed (or be about to absorb) the source's current
    /// contents; [`Database::refresh_view`] catches up either way.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] when `source` does not exist.
    pub fn register_view(
        &self,
        view: &str,
        source: &str,
        state: Box<dyn AnyMaterialized>,
    ) -> Result<()> {
        if !self.has_table(source) {
            return Err(EngineError::TableNotFound {
                name: source.to_owned(),
            });
        }
        write_lock(&self.views).insert(
            view.to_owned(),
            ViewEntry {
                source: source.to_owned(),
                state: Arc::new(Mutex::new(state)),
            },
        );
        Ok(())
    }

    /// Whether a materialized view of this name exists.
    pub fn has_view(&self, view: &str) -> bool {
        read_lock(&self.views).contains_key(view)
    }

    /// Drops the named materialized view, returning whether it existed.
    pub fn drop_view(&self, view: &str) -> bool {
        write_lock(&self.views).remove(view).is_some()
    }

    /// Catches the named view up to its source table's current contents
    /// (absorbing only rows past its watermark) and hands the up-to-date
    /// state to `with`.
    ///
    /// # Errors
    /// Returns [`EngineError::ModelNotFound`] for an unknown view,
    /// [`EngineError::TableNotFound`] when the source table was dropped, and
    /// propagates absorb errors.
    pub fn refresh_view<T>(
        &self,
        view: &str,
        with: impl FnOnce(&mut dyn AnyMaterialized) -> Result<T>,
    ) -> Result<T> {
        let (source, state) = {
            let views = read_lock(&self.views);
            let entry = views.get(view).ok_or_else(|| EngineError::ModelNotFound {
                name: view.to_owned(),
                group: None,
            })?;
            (entry.source.clone(), Arc::clone(&entry.state))
        };
        let snapshot = self.table(&source)?;
        let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
        guard.absorb(&snapshot)?;
        with(guard.as_mut())
    }

    /// Absorbs the current contents of `table` into every view registered on
    /// it (called by [`Database::append_rows`] after the insert commits).
    fn absorb_views_of(&self, table: &str) -> Result<()> {
        let watching: Vec<Arc<Mutex<Box<dyn AnyMaterialized>>>> = read_lock(&self.views)
            .values()
            .filter(|e| e.source == table)
            .map(|e| Arc::clone(&e.state))
            .collect();
        if watching.is_empty() {
            return Ok(());
        }
        let snapshot = self.table(table)?;
        for state in watching {
            let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
            guard.absorb(&snapshot)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ])
    }

    #[test]
    fn create_insert_read() {
        let db = Database::new(4).unwrap();
        db.create_table("data", schema()).unwrap();
        assert!(db.has_table("data"));
        db.with_table_mut("data", |t| {
            t.insert(row![1i64, 2.0])?;
            t.insert(row![2i64, 3.0])
        })
        .unwrap();
        let t = db.table("data").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.num_segments(), 4);
        assert_eq!(db.num_segments(), 4);
    }

    #[test]
    fn duplicate_and_missing_names() {
        let db = Database::new(2).unwrap();
        db.create_table("t", schema()).unwrap();
        assert!(matches!(
            db.create_table("t", schema()),
            Err(EngineError::TableAlreadyExists { .. })
        ));
        assert!(matches!(
            db.table("missing"),
            Err(EngineError::TableNotFound { .. })
        ));
        assert!(db.drop_table("missing").is_err());
        assert!(db.with_table_mut("missing", |_| Ok(())).is_err());
        assert!(db
            .replace_table("missing", Table::new(schema(), 1).unwrap())
            .is_err());
        assert!(Database::new(0).is_err());
    }

    #[test]
    fn temp_tables_are_dropped_together() {
        let db = Database::new(2).unwrap();
        db.create_table("keep", schema()).unwrap();
        db.create_temp_table("iter_state_1", schema()).unwrap();
        db.create_temp_table("iter_state_2", schema()).unwrap();
        assert_eq!(db.list_tables().len(), 3);
        assert_eq!(db.drop_temp_tables(), 2);
        assert!(db.has_table("keep"));
        assert!(!db.has_table("iter_state_1"));
    }

    #[test]
    fn register_and_replace() {
        let db = Database::new(3).unwrap();
        let mut t = Table::new(schema(), 3).unwrap();
        t.insert(row![1i64, 1.0]).unwrap();
        db.register_table("snapshot", t.clone()).unwrap();
        assert!(db.register_table("snapshot", t).is_err());
        assert_eq!(db.table("snapshot").unwrap().row_count(), 1);

        let replacement = Table::new(schema(), 3).unwrap();
        db.replace_table("snapshot", replacement).unwrap();
        assert_eq!(db.table("snapshot").unwrap().row_count(), 0);
    }

    #[test]
    fn list_tables_sorted_with_temp_flag() {
        let db = Database::new(1).unwrap();
        db.create_table("zeta", schema()).unwrap();
        db.create_temp_table("alpha", schema()).unwrap();
        let listing = db.list_tables();
        assert_eq!(listing[0], ("alpha".to_owned(), true));
        assert_eq!(listing[1], ("zeta".to_owned(), false));
    }

    #[test]
    fn database_is_cheaply_cloneable_and_shared() {
        let db = Database::new(2).unwrap();
        db.create_table("shared", schema()).unwrap();
        let db2 = db.clone();
        db2.with_table_mut("shared", |t| t.insert(row![1i64, 1.0]))
            .unwrap();
        assert_eq!(db.table("shared").unwrap().row_count(), 1);
    }

    /// Snapshots share sealed chunk buffers with the cataloged table by
    /// pointer identity — no copy — while the open tail chunk is
    /// copy-on-write: appending after the snapshot un-shares only the tail.
    #[test]
    fn snapshot_shares_sealed_chunks_by_pointer() {
        let db = Database::new(1).unwrap();
        let mut t = Table::new(schema(), 1)
            .unwrap()
            .with_chunk_capacity(4)
            .unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, i as f64]).unwrap();
        }
        db.register_table("data", t).unwrap();

        let snap = db.table("data").unwrap();
        let live = db.table("data").unwrap();
        // 10 rows at capacity 4 → chunks of 4, 4, 2: two sealed + open tail.
        let a = snap.segment(0).chunks();
        let b = live.segment(0).chunks();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(Arc::ptr_eq(x, y), "snapshot must share chunk buffers");
        }

        // An append after the snapshot is invisible to it and un-shares
        // only the tail chunk.
        db.with_table_mut("data", |t| t.insert(row![99i64, 99.0]))
            .unwrap();
        assert_eq!(snap.row_count(), 10);
        let after = db.table("data").unwrap();
        let c = after.segment(0).chunks();
        assert!(Arc::ptr_eq(&a[0], &c[0]));
        assert!(Arc::ptr_eq(&a[1], &c[1]));
        assert!(
            !Arc::ptr_eq(&a[2], &c[2]),
            "tail chunk must be copy-on-write"
        );
        assert_eq!(a[2].len(), 2);
        assert_eq!(c[2].len(), 3);
    }

    /// A long-running mutation of table A must not block a snapshot read of
    /// unrelated table B (per-table locks, not a catalog-wide write lock).
    #[test]
    fn append_to_one_table_does_not_block_scans_of_another() {
        use std::sync::mpsc;
        use std::time::Duration;

        let db = Database::new(2).unwrap();
        db.create_table("a", schema()).unwrap();
        db.create_table("b", schema()).unwrap();
        db.with_table_mut("b", |t| t.insert(row![1i64, 1.0]))
            .unwrap();

        // Holds table A's write lock until told to release.
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let db_writer = db.clone();
        let writer = std::thread::spawn(move || {
            db_writer
                .with_table_mut("a", |t| {
                    entered_tx.send(()).unwrap();
                    release_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("released");
                    t.insert(row![2i64, 2.0])
                })
                .unwrap();
        });
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("writer entered closure");

        // With table A mid-append, a scan of table B must complete.
        let (scanned_tx, scanned_rx) = mpsc::channel();
        let db_reader = db.clone();
        let reader = std::thread::spawn(move || {
            let rows = db_reader.table("b").unwrap().row_count();
            scanned_tx.send(rows).unwrap();
        });
        let rows = scanned_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("scan of b must not wait on a's append");
        assert_eq!(rows, 1);
        reader.join().unwrap();

        release_tx.send(()).unwrap();
        writer.join().unwrap();
        assert_eq!(db.table("a").unwrap().row_count(), 1);
    }

    /// The unique-temp-table counter is monotonic: names never repeat, a
    /// same-named regular table is never shadowed, and concurrent callers
    /// (the shape of parallel per-group IRLS fits sharing a state base name)
    /// all receive distinct tables.
    #[test]
    fn unique_temp_tables_under_concurrency() {
        let db = Database::new(1).unwrap();
        db.create_table("iter_state", schema()).unwrap();

        let names: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let db = db.clone();
                    scope.spawn(move || {
                        (0..16)
                            .map(|_| db.create_unique_temp_table("iter_state", schema()).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut unique: std::collections::HashSet<&str> =
            names.iter().map(String::as_str).collect();
        assert_eq!(unique.len(), names.len(), "temp names must be distinct");
        unique.insert("iter_state");
        assert_eq!(unique.len(), names.len() + 1, "base name never reused");
        // Dropping the temps leaves the regular table untouched.
        assert_eq!(db.drop_temp_tables(), names.len());
        assert!(db.has_table("iter_state"));
    }
}
