//! The database: a catalog of named tables plus temp-table support.
//!
//! The driver-function pattern from the paper (Section 3.1.2, Figure 3)
//! stages inter-iteration state in temporary tables created with
//! `CREATE TEMP TABLE ... AS SELECT ...` so that "all large-data movement is
//! done within the database engine".  [`Database`] provides that catalog:
//! regular tables, temp tables (dropped on [`Database::drop_temp_tables`]),
//! and a default segment count that new tables inherit (the analogue of the
//! cluster's segment configuration).

use crate::catalog::ModelCatalog;
use crate::error::{EngineError, Result};
use crate::schema::Schema;
use crate::table::{Distribution, Table};
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug)]
struct CatalogEntry {
    table: Table,
    is_temp: bool,
}

/// An in-memory database: named tables partitioned across a configurable
/// number of segments.
#[derive(Debug, Clone)]
pub struct Database {
    inner: Arc<RwLock<HashMap<String, CatalogEntry>>>,
    models: ModelCatalog,
    num_segments: usize,
}

impl Database {
    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, CatalogEntry>> {
        // Catalog mutations cannot leave the map in a half-written state, so
        // recover from poisoning instead of propagating the panic.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, CatalogEntry>> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a database whose tables default to `num_segments` partitions.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSegmentCount`] when `num_segments == 0`.
    pub fn new(num_segments: usize) -> Result<Self> {
        if num_segments == 0 {
            return Err(EngineError::InvalidSegmentCount { requested: 0 });
        }
        Ok(Self {
            inner: Arc::new(RwLock::new(HashMap::new())),
            models: ModelCatalog::new(),
            num_segments,
        })
    }

    /// Default segment count for new tables.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// The database's model catalog: named, typed storage for trained models
    /// (single or per-group), shared by all clones of this handle exactly
    /// like the table catalog.
    pub fn models(&self) -> &ModelCatalog {
        &self.models
    }

    /// Creates an empty (regular) table.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.create_internal(name, schema, Distribution::RoundRobin, false)
    }

    /// Creates an empty table with an explicit distribution policy.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision or a
    /// distribution error.
    pub fn create_table_distributed(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
    ) -> Result<()> {
        self.create_internal(name, schema, distribution, false)
    }

    /// Creates an empty temp table (`CREATE TEMP TABLE`).  Temp tables behave
    /// exactly like regular tables but are dropped by
    /// [`Database::drop_temp_tables`], which method drivers call when an
    /// iteration completes.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn create_temp_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.create_internal(name, schema, Distribution::RoundRobin, true)
    }

    /// Creates an empty temp table under `base` or, when that name is taken,
    /// the first free `base_1`, `base_2`, ... — returning the name actually
    /// used.  Probe and create happen under one catalog write lock, so
    /// concurrent callers (e.g. parallel per-group iterative fits sharing an
    /// iteration-state base name) always receive distinct tables; the old
    /// probe-then-create dance in callers raced between the two steps.
    ///
    /// # Errors
    /// Propagates table-construction errors.
    pub fn create_unique_temp_table(&self, base: &str, schema: Schema) -> Result<String> {
        let mut catalog = self.write();
        let name = if catalog.contains_key(base) {
            let mut i = 1usize;
            loop {
                let candidate = format!("{base}_{i}");
                if !catalog.contains_key(&candidate) {
                    break candidate;
                }
                i += 1;
            }
        } else {
            base.to_owned()
        };
        let table = Table::with_distribution(schema, self.num_segments, Distribution::RoundRobin)?;
        catalog.insert(
            name.clone(),
            CatalogEntry {
                table,
                is_temp: true,
            },
        );
        Ok(name)
    }

    fn create_internal(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
        is_temp: bool,
    ) -> Result<()> {
        let mut catalog = self.write();
        if catalog.contains_key(name) {
            return Err(EngineError::TableAlreadyExists {
                name: name.to_owned(),
            });
        }
        let table = Table::with_distribution(schema, self.num_segments, distribution)?;
        catalog.insert(name.to_owned(), CatalogEntry { table, is_temp });
        Ok(())
    }

    /// Registers an already-populated table under `name` (the programmatic
    /// equivalent of `CREATE TABLE ... AS SELECT`).
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        let mut catalog = self.write();
        if catalog.contains_key(name) {
            return Err(EngineError::TableAlreadyExists {
                name: name.to_owned(),
            });
        }
        catalog.insert(
            name.to_owned(),
            CatalogEntry {
                table,
                is_temp: false,
            },
        );
        Ok(())
    }

    /// Returns a clone of the named table.
    ///
    /// Cloning keeps the API simple and mirrors a snapshot read; method
    /// drivers operate on the snapshot and write results back under a new
    /// name.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn table(&self, name: &str) -> Result<Table> {
        self.read()
            .get(name)
            .map(|e| e.table.clone())
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })
    }

    /// Whether the named table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Lists table names (sorted) together with their temp status.
    pub fn list_tables(&self) -> Vec<(String, bool)> {
        let mut names: Vec<(String, bool)> = self
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.is_temp))
            .collect();
        names.sort();
        names
    }

    /// Applies a mutation to the named table in place (insert rows, truncate,
    /// etc.).
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name and
    /// propagates errors from the mutation closure.
    pub fn with_table_mut<T>(
        &self,
        name: &str,
        mutate: impl FnOnce(&mut Table) -> Result<T>,
    ) -> Result<T> {
        let mut catalog = self.write();
        let entry = catalog
            .get_mut(name)
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })?;
        mutate(&mut entry.table)
    }

    /// Replaces the contents of the named table with `table` (the
    /// `CREATE TABLE AS SELECT` + `DROP TABLE` pattern the paper recommends
    /// over large `UPDATE`s in PostgreSQL, Section 4.3).
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn replace_table(&self, name: &str, table: Table) -> Result<()> {
        let mut catalog = self.write();
        let entry = catalog
            .get_mut(name)
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })?;
        entry.table = table;
        Ok(())
    }

    /// Drops the named table.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut catalog = self.write();
        catalog
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })
    }

    /// Drops all temp tables, returning how many were removed.
    pub fn drop_temp_tables(&self) -> usize {
        let mut catalog = self.write();
        let before = catalog.len();
        catalog.retain(|_, e| !e.is_temp);
        before - catalog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ])
    }

    #[test]
    fn create_insert_read() {
        let db = Database::new(4).unwrap();
        db.create_table("data", schema()).unwrap();
        assert!(db.has_table("data"));
        db.with_table_mut("data", |t| {
            t.insert(row![1i64, 2.0])?;
            t.insert(row![2i64, 3.0])
        })
        .unwrap();
        let t = db.table("data").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.num_segments(), 4);
        assert_eq!(db.num_segments(), 4);
    }

    #[test]
    fn duplicate_and_missing_names() {
        let db = Database::new(2).unwrap();
        db.create_table("t", schema()).unwrap();
        assert!(matches!(
            db.create_table("t", schema()),
            Err(EngineError::TableAlreadyExists { .. })
        ));
        assert!(matches!(
            db.table("missing"),
            Err(EngineError::TableNotFound { .. })
        ));
        assert!(db.drop_table("missing").is_err());
        assert!(db.with_table_mut("missing", |_| Ok(())).is_err());
        assert!(db
            .replace_table("missing", Table::new(schema(), 1).unwrap())
            .is_err());
        assert!(Database::new(0).is_err());
    }

    #[test]
    fn temp_tables_are_dropped_together() {
        let db = Database::new(2).unwrap();
        db.create_table("keep", schema()).unwrap();
        db.create_temp_table("iter_state_1", schema()).unwrap();
        db.create_temp_table("iter_state_2", schema()).unwrap();
        assert_eq!(db.list_tables().len(), 3);
        assert_eq!(db.drop_temp_tables(), 2);
        assert!(db.has_table("keep"));
        assert!(!db.has_table("iter_state_1"));
    }

    #[test]
    fn register_and_replace() {
        let db = Database::new(3).unwrap();
        let mut t = Table::new(schema(), 3).unwrap();
        t.insert(row![1i64, 1.0]).unwrap();
        db.register_table("snapshot", t.clone()).unwrap();
        assert!(db.register_table("snapshot", t).is_err());
        assert_eq!(db.table("snapshot").unwrap().row_count(), 1);

        let replacement = Table::new(schema(), 3).unwrap();
        db.replace_table("snapshot", replacement).unwrap();
        assert_eq!(db.table("snapshot").unwrap().row_count(), 0);
    }

    #[test]
    fn list_tables_sorted_with_temp_flag() {
        let db = Database::new(1).unwrap();
        db.create_table("zeta", schema()).unwrap();
        db.create_temp_table("alpha", schema()).unwrap();
        let listing = db.list_tables();
        assert_eq!(listing[0], ("alpha".to_owned(), true));
        assert_eq!(listing[1], ("zeta".to_owned(), false));
    }

    #[test]
    fn database_is_cheaply_cloneable_and_shared() {
        let db = Database::new(2).unwrap();
        db.create_table("shared", schema()).unwrap();
        let db2 = db.clone();
        db2.with_table_mut("shared", |t| t.insert(row![1i64, 1.0]))
            .unwrap();
        assert_eq!(db.table("shared").unwrap().row_count(), 1);
    }
}
