//! The database: a catalog of named tables plus temp-table support.
//!
//! The driver-function pattern from the paper (Section 3.1.2, Figure 3)
//! stages inter-iteration state in temporary tables created with
//! `CREATE TEMP TABLE ... AS SELECT ...` so that "all large-data movement is
//! done within the database engine".  [`Database`] provides that catalog:
//! regular tables, temp tables (dropped on [`Database::drop_temp_tables`]),
//! and a default segment count that new tables inherit (the analogue of the
//! cluster's segment configuration).
//!
//! # Locking
//!
//! The catalog map itself is guarded by one `RwLock`, but each table lives
//! behind its **own** `Arc<RwLock<Table>>`: catalog operations (create,
//! drop, lookup) take the catalog lock only long enough to touch the map,
//! and every table read or mutation happens under that table's private
//! lock.  A long append to table A therefore never blocks a snapshot read
//! of table B — the failure mode of the earlier design, where
//! [`Database::with_table_mut`] held the catalog-wide write lock for its
//! closure's full duration.
//!
//! # Snapshot isolation
//!
//! [`Database::table`] and [`Database::dataset`] return a *snapshot*: a
//! clone of the table taken under its read lock.  Because a
//! [`crate::chunk::Segment`]'s chunks sit behind `Arc`, the clone shares
//! every sealed chunk buffer with the cataloged table (pointer identity, no
//! copy) and only the open tail chunk is copied lazily when a later append
//! mutates it (`Arc::make_mut`).  Appends committed *after* the snapshot
//! was taken are never visible to it, and the snapshot stays valid after
//! the table is dropped — the read-committed snapshot semantics the paper's
//! method drivers assume of `source_table`.
//!
//! # Durability
//!
//! A database opened with [`Database::open`] is backed by a directory: a
//! write-ahead log (`crate::wal`) plus chunk-granular snapshots and a
//! manifest (`crate::persist`).  The logged operations are exactly the
//! catalog-level mutations — [`Database::create_table`] (and variants),
//! [`Database::append_rows`], [`Database::truncate_table`],
//! [`Database::replace_table`], [`Database::register_table`] and
//! [`Database::drop_table`].  Each call is one WAL record; **the commit
//! point is the fsync of the group-commit batch containing that record**,
//! and the call does not return success before it.  Concurrent committers
//! share one fsync (group commit); a reader may observe rows a few
//! microseconds before their commit fsync completes (async-commit-style
//! visibility), but the *caller* is only acknowledged after it.
//!
//! What is durable: table data, schemas, distribution and chunk layout —
//! recovery ([`Database::open`] / [`Database::recover`]) reproduces them
//! **bit-identically** to a committed prefix of the operation history, chunk
//! boundaries and round-robin cursor included.  Models and materialized
//! views are *derived caches*: they are not persisted and do not survive the
//! process, but because training and view absorption are deterministic over
//! bit-identical tables, re-registering and refreshing them after recovery
//! reproduces their pre-crash state bit-for-bit.  Temp tables are never
//! logged or persisted.  [`Database::with_table_mut`] is the unlogged escape
//! hatch — mutations made through it reach disk only at the next
//! [`Database::checkpoint`].
//!
//! Logged mutations follow one locking discipline so that WAL order always
//! equals in-memory apply order: take the commit gate (read), then the
//! catalog lock, then the table's write lock, and enqueue the record before
//! releasing the table lock.  The checkpoint takes the gate in write mode,
//! so its manifest `(epoch, offset)` and its table snapshot agree exactly.

use crate::catalog::ModelCatalog;
use crate::error::{EngineError, Result};
use crate::materialize::AnyMaterialized;
use crate::persist::{
    self, Durability, Manifest, ManifestSegment, ManifestTable, PersistState, TablePersist,
    WalRecord,
};
use crate::row::Row;
use crate::schema::Schema;
use crate::table::{Distribution, Table};
use crate::value::Value;
use crate::wal::{self, Wal, WAL_HEADER_LEN};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Clone)]
struct CatalogEntry {
    table: Arc<RwLock<Table>>,
    is_temp: bool,
}

/// A registered materialized aggregate: the type-erased incremental state
/// plus the source table it watches.
struct ViewEntry {
    source: String,
    state: Arc<Mutex<Box<dyn AnyMaterialized>>>,
}

/// An in-memory database: named tables partitioned across a configurable
/// number of segments.
#[derive(Clone)]
pub struct Database {
    inner: Arc<RwLock<HashMap<String, CatalogEntry>>>,
    views: Arc<RwLock<HashMap<String, ViewEntry>>>,
    models: ModelCatalog,
    temp_counter: Arc<AtomicU64>,
    /// Source of per-table lifecycle generations (see [`Table::generation`]);
    /// starts at 1 so generation 0 marks standalone, never-cataloged tables.
    generations: Arc<AtomicU64>,
    durability: Option<Arc<Durability>>,
    num_segments: usize,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("num_segments", &self.num_segments)
            .field("tables", &self.list_tables().len())
            .finish_non_exhaustive()
    }
}

/// Recovers a read guard from a poisoned lock: catalog and table mutations
/// cannot leave their data half-written, so propagating the panic as a
/// second panic would only lose information.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Database {
    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, CatalogEntry>> {
        read_lock(&self.inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, CatalogEntry>> {
        write_lock(&self.inner)
    }

    /// Looks up a table's lock handle, holding the catalog lock only for the
    /// map probe.
    fn entry(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        self.read()
            .get(name)
            .map(|e| Arc::clone(&e.table))
            .ok_or_else(|| EngineError::TableNotFound {
                name: name.to_owned(),
            })
    }

    /// Creates a database whose tables default to `num_segments` partitions.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSegmentCount`] when `num_segments == 0`.
    pub fn new(num_segments: usize) -> Result<Self> {
        if num_segments == 0 {
            return Err(EngineError::InvalidSegmentCount { requested: 0 });
        }
        Ok(Self {
            inner: Arc::new(RwLock::new(HashMap::new())),
            views: Arc::new(RwLock::new(HashMap::new())),
            models: ModelCatalog::new(),
            temp_counter: Arc::new(AtomicU64::new(1)),
            generations: Arc::new(AtomicU64::new(1)),
            durability: None,
            num_segments,
        })
    }

    fn next_generation(&self) -> u64 {
        self.generations.fetch_add(1, Ordering::Relaxed)
    }

    /// Serializes a logged mutation's record while the caller holds the lock
    /// that orders the matching in-memory change; `None` on a non-durable
    /// database (or for temp tables, which callers filter out).
    fn enqueue(&self, record: &WalRecord) -> Option<wal::Ticket> {
        self.durability
            .as_ref()
            .map(|d| d.wal.append(&persist::encode_record(record)))
    }

    /// Blocks until the enqueued record's group-commit fsync completes — the
    /// commit point.  Called after all locks are released, so a committer
    /// waiting on the disk never blocks other tables' traffic.
    fn wait_durable(&self, ticket: Option<wal::Ticket>) -> Result<()> {
        match (&self.durability, ticket) {
            (Some(d), Some(t)) => d.wal.wait(t),
            _ => Ok(()),
        }
    }

    /// The commit gate, held for read across (locks + enqueue) of every
    /// logged mutation; [`Database::checkpoint`] takes it for write.
    fn commit_gate(&self) -> Option<RwLockReadGuard<'_, ()>> {
        self.durability.as_ref().map(|d| read_lock(&d.gate))
    }

    /// Default segment count for new tables.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// The database's model catalog: named, typed storage for trained models
    /// (single or per-group), shared by all clones of this handle exactly
    /// like the table catalog.
    pub fn models(&self) -> &ModelCatalog {
        &self.models
    }

    /// Creates an empty (regular) table.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.create_internal(name, schema, Distribution::RoundRobin, false, None)
    }

    /// Creates an empty table with an explicit distribution policy.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision or a
    /// distribution error.
    pub fn create_table_distributed(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
    ) -> Result<()> {
        self.create_internal(name, schema, distribution, false, None)
    }

    /// Creates an empty table with an explicit rows-per-chunk capacity
    /// (default [`crate::chunk::CHUNK_CAPACITY`]).  Small capacities let
    /// tests and benchmarks exercise chunk-boundary behaviour — sealing,
    /// snapshot persistence, watermark advancement — with few rows; the
    /// capacity is logged and persisted, so recovery reproduces the same
    /// chunk layout.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision and
    /// [`EngineError::InvalidArgument`] for a zero capacity.
    pub fn create_table_with_chunk_capacity(
        &self,
        name: &str,
        schema: Schema,
        chunk_capacity: usize,
    ) -> Result<()> {
        self.create_internal(
            name,
            schema,
            Distribution::RoundRobin,
            false,
            Some(chunk_capacity),
        )
    }

    /// Creates an empty temp table (`CREATE TEMP TABLE`).  Temp tables behave
    /// exactly like regular tables but are dropped by
    /// [`Database::drop_temp_tables`], which method drivers call when an
    /// iteration completes.
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn create_temp_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.create_internal(name, schema, Distribution::RoundRobin, true, None)
    }

    /// Creates an empty temp table under `base` or, when that name is taken,
    /// `base_<n>` for a database-wide monotonic counter `n` — returning the
    /// name actually used.  Probe and create happen under one catalog write
    /// lock, so concurrent callers (e.g. parallel per-group iterative fits
    /// sharing an iteration-state base name) always receive distinct tables.
    ///
    /// The counter advances monotonically and is never reused, so a burst of
    /// k concurrent fits costs O(k) probes total — the earlier
    /// `base_1, base_2, ...` linear re-probe was O(k²) across many live
    /// per-group iteration tables and could collide semantically with a
    /// same-named regular table that happened to end in `_<i>`.
    ///
    /// # Errors
    /// Propagates table-construction errors.
    pub fn create_unique_temp_table(&self, base: &str, schema: Schema) -> Result<String> {
        let mut catalog = self.write();
        let name = if catalog.contains_key(base) {
            loop {
                let n = self.temp_counter.fetch_add(1, Ordering::Relaxed);
                let candidate = format!("{base}_{n}");
                if !catalog.contains_key(&candidate) {
                    break candidate;
                }
            }
        } else {
            base.to_owned()
        };
        let mut table =
            Table::with_distribution(schema, self.num_segments, Distribution::RoundRobin)?;
        table.set_generation(self.next_generation());
        catalog.insert(
            name.clone(),
            CatalogEntry {
                table: Arc::new(RwLock::new(table)),
                is_temp: true,
            },
        );
        Ok(name)
    }

    fn create_internal(
        &self,
        name: &str,
        schema: Schema,
        distribution: Distribution,
        is_temp: bool,
        chunk_capacity: Option<usize>,
    ) -> Result<()> {
        let ticket = {
            let _gate = self.commit_gate();
            let mut catalog = self.write();
            if catalog.contains_key(name) {
                return Err(EngineError::TableAlreadyExists {
                    name: name.to_owned(),
                });
            }
            let mut table =
                Table::with_distribution(schema.clone(), self.num_segments, distribution.clone())?;
            if let Some(capacity) = chunk_capacity {
                table = table.with_chunk_capacity(capacity)?;
            }
            table.set_generation(self.next_generation());
            let capacity = table.chunk_capacity();
            catalog.insert(
                name.to_owned(),
                CatalogEntry {
                    table: Arc::new(RwLock::new(table)),
                    is_temp,
                },
            );
            if is_temp {
                None
            } else {
                // Enqueued under the catalog write lock, so no same-name
                // drop/create can interleave between apply and log.
                self.enqueue(&WalRecord::CreateTable {
                    name: name.to_owned(),
                    schema,
                    distribution,
                    chunk_capacity: capacity as u64,
                })
            }
        };
        self.wait_durable(ticket)
    }

    /// Builds the wholesale-contents WAL record for `table` (used by
    /// [`Database::register_table`] and [`Database::replace_table`]): every
    /// row per segment in insertion order, so replay reproduces the exact
    /// chunk layout — segments always fill sequentially.
    fn put_table_record(name: &str, table: &Table) -> WalRecord {
        let segments: Vec<Vec<Vec<Value>>> = (0..table.num_segments())
            .map(|s| {
                table
                    .segment(s)
                    .iter()
                    .map(|row| row.values().to_vec())
                    .collect()
            })
            .collect();
        WalRecord::PutTable {
            name: name.to_owned(),
            schema: table.schema().clone(),
            distribution: table.distribution().clone(),
            chunk_capacity: table.chunk_capacity() as u64,
            next_round_robin: table.next_round_robin() as u64,
            segments,
        }
    }

    /// Registers an already-populated table under `name` (the programmatic
    /// equivalent of `CREATE TABLE ... AS SELECT`).
    ///
    /// # Errors
    /// Returns [`EngineError::TableAlreadyExists`] on a name collision.
    pub fn register_table(&self, name: &str, mut table: Table) -> Result<()> {
        let ticket = {
            let _gate = self.commit_gate();
            let mut catalog = self.write();
            if catalog.contains_key(name) {
                return Err(EngineError::TableAlreadyExists {
                    name: name.to_owned(),
                });
            }
            table.set_generation(self.next_generation());
            let record = self
                .durability
                .is_some()
                .then(|| Self::put_table_record(name, &table));
            catalog.insert(
                name.to_owned(),
                CatalogEntry {
                    table: Arc::new(RwLock::new(table)),
                    is_temp: false,
                },
            );
            record.as_ref().and_then(|r| self.enqueue(r))
        };
        self.wait_durable(ticket)
    }

    /// Returns a snapshot of the named table.
    ///
    /// The snapshot is taken under the table's read lock and is **cheap**:
    /// sealed chunk buffers are shared with the cataloged table by `Arc`
    /// (pointer identity, no copy); only segment/chunk bookkeeping is
    /// cloned.  Appends committed after this call are invisible to the
    /// snapshot, and the snapshot outlives a later `drop_table` — see the
    /// module-level *Snapshot isolation* notes.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn table(&self, name: &str) -> Result<Table> {
        let entry = self.entry(name)?;
        let guard = read_lock(&entry);
        Ok(guard.clone())
    }

    /// Whether the named table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Lists table names (sorted) together with their temp status.
    pub fn list_tables(&self) -> Vec<(String, bool)> {
        let mut names: Vec<(String, bool)> = self
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.is_temp))
            .collect();
        names.sort();
        names
    }

    /// Applies a mutation to the named table in place (insert rows, truncate,
    /// etc.).
    ///
    /// Only the named table's own write lock is held while `mutate` runs —
    /// reads and writes of *other* tables proceed concurrently.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name and
    /// propagates errors from the mutation closure.
    pub fn with_table_mut<T>(
        &self,
        name: &str,
        mutate: impl FnOnce(&mut Table) -> Result<T>,
    ) -> Result<T> {
        let entry = self.entry(name)?;
        let mut guard = write_lock(&entry);
        mutate(&mut guard)
    }

    /// Appends rows to the named table and advances every materialized
    /// aggregate registered on it (each absorbs exactly the newly appended
    /// rows via its chunk watermark — history is not rescanned).
    ///
    /// The whole batch is one WAL record: recovery surfaces either all of
    /// these rows or none of them, never a partial batch.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name and
    /// propagates insert errors (in which case nothing is logged).  When the
    /// insert commits but one or more views fail to absorb it, the rows
    /// **stay committed**, every failing view is marked for rebuild, and the
    /// error is [`EngineError::ViewAbsorbFailed`] naming them.
    pub fn append_rows(&self, name: &str, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        let rows: Vec<Row> = rows.into_iter().collect();
        let ticket = {
            let _gate = self.commit_gate();
            // Take the table's write lock while still holding the catalog
            // read lock (the uniform gate → catalog → table order), so a
            // concurrent drop of this table cannot be logged between our
            // in-memory apply and our WAL enqueue.
            let catalog = self.read();
            let entry = catalog
                .get(name)
                .ok_or_else(|| EngineError::TableNotFound {
                    name: name.to_owned(),
                })?;
            let is_temp = entry.is_temp;
            let handle = Arc::clone(&entry.table);
            let mut table = write_lock(&handle);
            drop(catalog);
            // Validate the full batch up front: a WAL record must describe
            // rows that all applied, so nothing may fail after the first
            // insert.
            for row in &rows {
                table.schema().validate(row.values())?;
            }
            let record = (!is_temp && self.durability.is_some()).then(|| WalRecord::Append {
                table: name.to_owned(),
                rows: rows.iter().map(|r| r.values().to_vec()).collect(),
            });
            for row in rows {
                table.insert(row)?;
            }
            record.as_ref().and_then(|r| self.enqueue(r))
        };
        self.wait_durable(ticket)?;
        self.absorb_views_of(name)
    }

    /// Replaces the contents of the named table with `table` (the
    /// `CREATE TABLE AS SELECT` + `DROP TABLE` pattern the paper recommends
    /// over large `UPDATE`s in PostgreSQL, Section 4.3).  The table receives
    /// a fresh lifecycle generation, so views watching it rebuild instead of
    /// absorbing against watermarks that describe the old contents.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn replace_table(&self, name: &str, mut table: Table) -> Result<()> {
        let ticket = {
            let _gate = self.commit_gate();
            let catalog = self.read();
            let entry = catalog
                .get(name)
                .ok_or_else(|| EngineError::TableNotFound {
                    name: name.to_owned(),
                })?;
            let is_temp = entry.is_temp;
            let handle = Arc::clone(&entry.table);
            let mut guard = write_lock(&handle);
            drop(catalog);
            table.set_generation(self.next_generation());
            let record = (!is_temp && self.durability.is_some())
                .then(|| Self::put_table_record(name, &table));
            *guard = table;
            record.as_ref().and_then(|r| self.enqueue(r))
        };
        self.wait_durable(ticket)
    }

    /// Removes every row from the named table, keeping schema, distribution
    /// and chunk capacity (SQL `TRUNCATE`).  The table receives a fresh
    /// lifecycle generation, so views watching it rebuild from the now-empty
    /// contents instead of treating their watermarks as still valid.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn truncate_table(&self, name: &str) -> Result<()> {
        let ticket = {
            let _gate = self.commit_gate();
            let catalog = self.read();
            let entry = catalog
                .get(name)
                .ok_or_else(|| EngineError::TableNotFound {
                    name: name.to_owned(),
                })?;
            let is_temp = entry.is_temp;
            let handle = Arc::clone(&entry.table);
            let mut guard = write_lock(&handle);
            drop(catalog);
            guard.truncate();
            guard.set_generation(self.next_generation());
            if is_temp {
                None
            } else {
                self.enqueue(&WalRecord::Truncate {
                    table: name.to_owned(),
                })
            }
        };
        self.wait_durable(ticket)
    }

    /// Drops the named table.  Views watching it keep their state but fail
    /// with [`EngineError::TableNotFound`] on refresh; if a table of the same
    /// name is created later, its fresh generation forces those views to
    /// rebuild rather than absorb against stale watermarks.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let ticket = {
            let _gate = self.commit_gate();
            let mut catalog = self.write();
            let entry = catalog
                .remove(name)
                .ok_or_else(|| EngineError::TableNotFound {
                    name: name.to_owned(),
                })?;
            // Take the removed table's write lock under the catalog write
            // lock: an in-flight append enqueues its record before releasing
            // the table lock, so the drop record always follows it in the
            // WAL — log order matches apply order.
            let _table = write_lock(&entry.table);
            if entry.is_temp {
                None
            } else {
                self.enqueue(&WalRecord::DropTable {
                    name: name.to_owned(),
                })
            }
        };
        self.wait_durable(ticket)
    }

    /// Drops all temp tables, returning how many were removed.
    pub fn drop_temp_tables(&self) -> usize {
        let mut catalog = self.write();
        let before = catalog.len();
        catalog.retain(|_, e| !e.is_temp);
        before - catalog.len()
    }

    /// Registers a materialized aggregate under `view`, watching `source`,
    /// replacing any previous view of the same name (`CREATE OR REPLACE`
    /// semantics, matching [`ModelCatalog::register`]).  The state should
    /// already have absorbed (or be about to absorb) the source's current
    /// contents; [`Database::refresh_view`] catches up either way.
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] when `source` does not exist.
    pub fn register_view(
        &self,
        view: &str,
        source: &str,
        state: Box<dyn AnyMaterialized>,
    ) -> Result<()> {
        if !self.has_table(source) {
            return Err(EngineError::TableNotFound {
                name: source.to_owned(),
            });
        }
        write_lock(&self.views).insert(
            view.to_owned(),
            ViewEntry {
                source: source.to_owned(),
                state: Arc::new(Mutex::new(state)),
            },
        );
        Ok(())
    }

    /// Whether a materialized view of this name exists.
    pub fn has_view(&self, view: &str) -> bool {
        read_lock(&self.views).contains_key(view)
    }

    /// Drops the named materialized view, returning whether it existed.
    pub fn drop_view(&self, view: &str) -> bool {
        write_lock(&self.views).remove(view).is_some()
    }

    /// Catches the named view up to its source table's current contents
    /// (absorbing only rows past its watermark) and hands the up-to-date
    /// state to `with`.
    ///
    /// # Errors
    /// Returns [`EngineError::ModelNotFound`] for an unknown view,
    /// [`EngineError::TableNotFound`] when the source table was dropped, and
    /// propagates absorb errors.
    pub fn refresh_view<T>(
        &self,
        view: &str,
        with: impl FnOnce(&mut dyn AnyMaterialized) -> Result<T>,
    ) -> Result<T> {
        let (source, state) = {
            let views = read_lock(&self.views);
            let entry = views.get(view).ok_or_else(|| EngineError::ModelNotFound {
                name: view.to_owned(),
                group: None,
            })?;
            (entry.source.clone(), Arc::clone(&entry.state))
        };
        let snapshot = self.table(&source)?;
        let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
        guard.absorb(&snapshot)?;
        with(guard.as_mut())
    }

    /// Absorbs the current contents of `table` into every view registered on
    /// it (called by [`Database::append_rows`] after the insert commits).
    ///
    /// The insert is already committed when this runs, so one view's failure
    /// must not abort the others: every view gets its absorb attempt, each
    /// failing view is marked needing rebuild (its next absorb starts from
    /// scratch), and the collected failures come back as a single
    /// [`EngineError::ViewAbsorbFailed`].
    fn absorb_views_of(&self, table: &str) -> Result<()> {
        type SharedView = Arc<Mutex<Box<dyn AnyMaterialized>>>;
        let mut watching: Vec<(String, SharedView)> = read_lock(&self.views)
            .iter()
            .filter(|(_, e)| e.source == table)
            .map(|(name, e)| (name.clone(), Arc::clone(&e.state)))
            .collect();
        if watching.is_empty() {
            return Ok(());
        }
        watching.sort_by(|a, b| a.0.cmp(&b.0));
        let snapshot = match self.table(table) {
            Ok(s) => s,
            // The table vanished between the append and this absorb
            // (concurrent drop): views catch up — or rebuild — on their next
            // refresh against whatever table then exists.
            Err(EngineError::TableNotFound { .. }) => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut failures = Vec::new();
        for (view, state) in watching {
            let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = guard.absorb(&snapshot) {
                guard.mark_needs_rebuild();
                failures.push((view, e.to_string()));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(EngineError::ViewAbsorbFailed {
                table: table.to_owned(),
                failures,
            })
        }
    }

    // -----------------------------------------------------------------------
    // Durability: open / recover / checkpoint
    // -----------------------------------------------------------------------

    /// Opens (or creates) a durable database rooted at `dir`.
    ///
    /// A fresh directory is initialized with an empty manifest — written
    /// *before* the WAL, so the segment count is always recoverable — and an
    /// empty log.  An existing directory is recovered first: the latest
    /// snapshot is loaded and the committed WAL tail replayed over it, so the
    /// returned handle reflects exactly the acknowledged commits (a torn tail
    /// beyond the committed prefix is truncated).  `num_segments` applies
    /// only to a fresh directory; reopening uses the persisted value.
    ///
    /// # Errors
    /// Returns [`EngineError::Storage`] on I/O failure, a corrupt manifest,
    /// or a WAL epoch that is neither the manifest's nor its successor, and
    /// [`EngineError::InvalidSegmentCount`] for `num_segments == 0` on a
    /// fresh directory.
    pub fn open(dir: impl AsRef<Path>, num_segments: usize) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::storage("create database directory", e))?;
        let manifest = persist::read_manifest(dir)?;
        let wal_file = persist::wal_path(dir);
        let wal_epoch = wal::read_epoch(&wal_file)?;

        let db_segments = manifest
            .as_ref()
            .map_or(num_segments, |m| m.num_segments as usize);
        let mut db = Self::new(db_segments)?;

        // Rebuild tables from the snapshot.
        let mut persist_tables = HashMap::new();
        let mut next_file_id = 1;
        if let Some(m) = &manifest {
            next_file_id = m.next_file_id;
            for t in &m.tables {
                let mut segments = Vec::with_capacity(t.segments.len());
                for (seg, ms) in t.segments.iter().enumerate() {
                    segments.push(persist::recover_segment(dir, t.file_id, seg, ms)?);
                }
                let mut table = Table::from_recovered(
                    t.schema.clone(),
                    segments,
                    t.distribution.clone(),
                    t.next_round_robin as usize,
                    t.chunk_capacity as usize,
                );
                table.set_generation(db.next_generation());
                persist_tables.insert(
                    t.name.clone(),
                    TablePersist {
                        file_id: t.file_id,
                        generation: table.generation(),
                        persisted: t.segments.iter().map(|s| s.persisted_chunks).collect(),
                    },
                );
                db.write().insert(
                    t.name.clone(),
                    CatalogEntry {
                        table: Arc::new(RwLock::new(table)),
                        is_temp: false,
                    },
                );
            }
        }

        // Decide the replay range from the (manifest, WAL-header) epoch pair
        // — see `crate::persist` for why exactly two epochs are acceptable —
        // then replay the committed tail and resume (or recreate) the log.
        let (records, wal) = match (&manifest, wal_epoch) {
            // Fresh directory: record the segment count durably before the
            // WAL exists.
            (None, None) => {
                persist::write_manifest(
                    dir,
                    &Manifest {
                        epoch: 0,
                        wal_offset: WAL_HEADER_LEN,
                        num_segments: db_segments as u64,
                        next_file_id: 1,
                        tables: Vec::new(),
                    },
                )?;
                (Vec::new(), Wal::create(&wal_file, 1)?)
            }
            // A log without a manifest: nothing was ever checkpointed (the
            // manifest this directory was initialized with is gone); replay
            // everything the log holds.
            (None, Some(epoch)) => {
                let scan = wal::scan(&wal_file, None)?;
                (scan.records, Wal::resume(&wal_file, epoch, scan.valid_len)?)
            }
            // Manifest but no usable log: the crash hit between manifest
            // install and WAL reset — or the header itself was corrupted, in
            // which case nothing in the file can be trusted.  Snapshot-only
            // recovery with a fresh log at the successor epoch.
            (Some(m), None) => (Vec::new(), Wal::create(&wal_file, m.epoch + 1)?),
            // Checkpoint manifest installed, WAL not yet reset: replay from
            // the recorded offset.
            (Some(m), Some(epoch)) if epoch == m.epoch => {
                let scan = wal::scan(&wal_file, Some(m.wal_offset))?;
                (scan.records, Wal::resume(&wal_file, epoch, scan.valid_len)?)
            }
            // Post-reset log: replay it in full.
            (Some(m), Some(epoch)) if epoch == m.epoch + 1 => {
                let scan = wal::scan(&wal_file, None)?;
                (scan.records, Wal::resume(&wal_file, epoch, scan.valid_len)?)
            }
            (Some(m), Some(epoch)) => {
                return Err(EngineError::Storage {
                    message: format!(
                        "wal epoch {epoch} matches neither manifest epoch {} nor its successor",
                        m.epoch
                    ),
                });
            }
        };
        for payload in &records {
            db.apply_recovered(persist::decode_record(payload)?)?;
        }

        db.durability = Some(Arc::new(Durability {
            dir: dir.to_path_buf(),
            wal,
            gate: RwLock::new(()),
            persist: Mutex::new(PersistState {
                next_file_id,
                tables: persist_tables,
            }),
        }));
        Ok(db)
    }

    /// Recovers an **existing** durable database from `dir`, refusing to
    /// create one: the directory must hold a manifest (every
    /// [`Database::open`] installs one before its first WAL write).
    ///
    /// # Errors
    /// Returns [`EngineError::Storage`] when no database exists at `dir`, and
    /// everything [`Database::open`] can return otherwise.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        if persist::read_manifest(dir)?.is_none() {
            return Err(EngineError::Storage {
                message: format!("no database at {}: missing manifest", dir.display()),
            });
        }
        Self::open(dir, 1)
    }

    /// Applies one replayed WAL record to in-memory state.  Recovery only:
    /// durability is not attached yet, so nothing is re-logged.  Mutations of
    /// tables a (corrupt or partially-replayed) log never created are
    /// skipped rather than failed — the committed prefix is what matters.
    fn apply_recovered(&self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::CreateTable {
                name,
                schema,
                distribution,
                chunk_capacity,
            } => {
                let mut table = Table::with_distribution(schema, self.num_segments, distribution)?
                    .with_chunk_capacity(chunk_capacity as usize)?;
                table.set_generation(self.next_generation());
                self.write().insert(
                    name,
                    CatalogEntry {
                        table: Arc::new(RwLock::new(table)),
                        is_temp: false,
                    },
                );
            }
            WalRecord::DropTable { name } => {
                self.write().remove(&name);
            }
            WalRecord::Append { table, rows } => {
                if let Ok(handle) = self.entry(&table) {
                    let mut guard = write_lock(&handle);
                    for values in rows {
                        guard.insert(Row::new(values))?;
                    }
                }
            }
            WalRecord::Truncate { table } => {
                if let Ok(handle) = self.entry(&table) {
                    let mut guard = write_lock(&handle);
                    guard.truncate();
                    guard.set_generation(self.next_generation());
                }
            }
            WalRecord::PutTable {
                name,
                schema,
                distribution,
                chunk_capacity,
                next_round_robin,
                segments,
            } => {
                let mut table =
                    Table::with_distribution(schema, segments.len().max(1), distribution)?
                        .with_chunk_capacity(chunk_capacity as usize)?;
                for (seg, rows) in segments.into_iter().enumerate() {
                    for values in rows {
                        table.insert_into_segment(seg, Row::new(values))?;
                    }
                }
                table.set_next_round_robin(next_round_robin as usize);
                table.set_generation(self.next_generation());
                self.write().insert(
                    name,
                    CatalogEntry {
                        table: Arc::new(RwLock::new(table)),
                        is_temp: false,
                    },
                );
            }
        }
        Ok(())
    }

    /// Writes a checkpoint: flushes the WAL, appends every newly sealed
    /// chunk to its segment's snapshot file (each sealed chunk is written
    /// exactly once across the database's lifetime), installs a manifest
    /// describing the result, and resets the WAL to a fresh epoch.  Logged
    /// mutations are excluded for the duration via the commit gate; pure
    /// reads proceed.  Returns the number of chunks newly written.
    ///
    /// A chunk is treated as sealed only once a successor chunk exists: the
    /// last chunk of each segment — even a full one — stays inline in the
    /// manifest, because only a successor proves it immutable and the
    /// snapshot files are strictly append-only.
    ///
    /// # Errors
    /// Returns [`EngineError::Storage`] on a non-durable database or on I/O
    /// failure.
    pub fn checkpoint(&self) -> Result<usize> {
        let d = self
            .durability
            .as_ref()
            .ok_or_else(|| EngineError::Storage {
                message: "checkpoint on a non-durable database".to_owned(),
            })?;
        let _gate = write_lock(&d.gate);
        d.wal.flush_all()?;
        let epoch = d.wal.epoch();
        let wal_offset = d.wal.durable_len();

        // Snapshot every non-temp table under its read lock, sorted for a
        // deterministic manifest.  Snapshots are cheap: sealed chunks are
        // shared by `Arc`.
        let snapshots: Vec<(String, Table)> = {
            let catalog = self.read();
            let mut v: Vec<(String, Table)> = catalog
                .iter()
                .filter(|(_, e)| !e.is_temp)
                .map(|(name, e)| (name.clone(), read_lock(&e.table).clone()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };

        let mut state = d.persist.lock().unwrap_or_else(|e| e.into_inner());
        // Chunk files are deleted only *after* the new manifest is
        // installed: the old manifest may still reference them, and a crash
        // before install must recover from it.
        let mut obsolete: Vec<(u64, usize)> = Vec::new();
        let live: std::collections::HashSet<&str> =
            snapshots.iter().map(|(n, _)| n.as_str()).collect();
        let dead: Vec<String> = state
            .tables
            .keys()
            .filter(|k| !live.contains(k.as_str()))
            .cloned()
            .collect();
        for name in dead {
            if let Some(tp) = state.tables.remove(&name) {
                obsolete.push((tp.file_id, tp.persisted.len()));
            }
        }

        let mut written = 0;
        let mut manifest_tables = Vec::with_capacity(snapshots.len());
        for (name, table) in &snapshots {
            let generation = table.generation();
            let num_segs = table.num_segments();
            let fresh_file = match state.tables.get(name) {
                Some(tp) => tp.generation != generation || tp.persisted.len() != num_segs,
                None => true,
            };
            if fresh_file {
                // New table, or its contents were replaced/truncated since
                // the last checkpoint: the persisted prefix no longer
                // describes it, so start a fresh chunk file.
                if let Some(old) = state.tables.remove(name) {
                    obsolete.push((old.file_id, old.persisted.len()));
                }
                let file_id = state.next_file_id;
                state.next_file_id += 1;
                state.tables.insert(
                    name.clone(),
                    TablePersist {
                        file_id,
                        generation,
                        persisted: vec![0; num_segs],
                    },
                );
            }
            let tp = state.tables.get_mut(name).expect("entry just ensured");
            let mut seg_manifests = Vec::with_capacity(num_segs);
            for seg in 0..num_segs {
                let chunks = table.segment(seg).chunks();
                let sealed = chunks.len().saturating_sub(1);
                let already = tp.persisted[seg] as usize;
                if sealed > already {
                    persist::append_chunks(
                        &persist::chunk_path(&d.dir, tp.file_id, seg),
                        &chunks[already..sealed],
                    )?;
                    written += sealed - already;
                    tp.persisted[seg] = sealed as u64;
                }
                seg_manifests.push(ManifestSegment {
                    persisted_chunks: sealed as u64,
                    tail: chunks.last().map(|c| (**c).clone()),
                });
            }
            manifest_tables.push(ManifestTable {
                name: name.clone(),
                file_id: tp.file_id,
                schema: table.schema().clone(),
                distribution: table.distribution().clone(),
                chunk_capacity: table.chunk_capacity() as u64,
                next_round_robin: table.next_round_robin() as u64,
                segments: seg_manifests,
            });
        }

        persist::write_manifest(
            &d.dir,
            &Manifest {
                epoch,
                wal_offset,
                num_segments: self.num_segments as u64,
                next_file_id: state.next_file_id,
                tables: manifest_tables,
            },
        )?;
        for (file_id, num_segs) in obsolete {
            persist::delete_chunk_files(&d.dir, file_id, num_segs);
        }
        d.wal.reset(epoch + 1)?;
        Ok(written)
    }

    /// Whether this database is backed by a durable directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The backing directory of a durable database.
    pub fn storage_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Bytes of write-ahead log durably on disk (header included); `None`
    /// when not durable.  Useful to tests and benchmarks that crash-inject
    /// at byte offsets or measure recovery time against WAL length.
    pub fn wal_durable_len(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.durable_len())
    }

    /// Enables or disables group commit (enabled by default).  Disabled,
    /// every committer pays its own fsync — the baseline the durability
    /// benchmark compares against.  No-op on a non-durable database.
    pub fn set_group_commit(&self, enabled: bool) {
        if let Some(d) = &self.durability {
            d.wal.set_group_commit(enabled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ])
    }

    #[test]
    fn create_insert_read() {
        let db = Database::new(4).unwrap();
        db.create_table("data", schema()).unwrap();
        assert!(db.has_table("data"));
        db.with_table_mut("data", |t| {
            t.insert(row![1i64, 2.0])?;
            t.insert(row![2i64, 3.0])
        })
        .unwrap();
        let t = db.table("data").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.num_segments(), 4);
        assert_eq!(db.num_segments(), 4);
    }

    #[test]
    fn duplicate_and_missing_names() {
        let db = Database::new(2).unwrap();
        db.create_table("t", schema()).unwrap();
        assert!(matches!(
            db.create_table("t", schema()),
            Err(EngineError::TableAlreadyExists { .. })
        ));
        assert!(matches!(
            db.table("missing"),
            Err(EngineError::TableNotFound { .. })
        ));
        assert!(db.drop_table("missing").is_err());
        assert!(db.with_table_mut("missing", |_| Ok(())).is_err());
        assert!(db
            .replace_table("missing", Table::new(schema(), 1).unwrap())
            .is_err());
        assert!(Database::new(0).is_err());
    }

    #[test]
    fn temp_tables_are_dropped_together() {
        let db = Database::new(2).unwrap();
        db.create_table("keep", schema()).unwrap();
        db.create_temp_table("iter_state_1", schema()).unwrap();
        db.create_temp_table("iter_state_2", schema()).unwrap();
        assert_eq!(db.list_tables().len(), 3);
        assert_eq!(db.drop_temp_tables(), 2);
        assert!(db.has_table("keep"));
        assert!(!db.has_table("iter_state_1"));
    }

    #[test]
    fn register_and_replace() {
        let db = Database::new(3).unwrap();
        let mut t = Table::new(schema(), 3).unwrap();
        t.insert(row![1i64, 1.0]).unwrap();
        db.register_table("snapshot", t.clone()).unwrap();
        assert!(db.register_table("snapshot", t).is_err());
        assert_eq!(db.table("snapshot").unwrap().row_count(), 1);

        let replacement = Table::new(schema(), 3).unwrap();
        db.replace_table("snapshot", replacement).unwrap();
        assert_eq!(db.table("snapshot").unwrap().row_count(), 0);
    }

    #[test]
    fn list_tables_sorted_with_temp_flag() {
        let db = Database::new(1).unwrap();
        db.create_table("zeta", schema()).unwrap();
        db.create_temp_table("alpha", schema()).unwrap();
        let listing = db.list_tables();
        assert_eq!(listing[0], ("alpha".to_owned(), true));
        assert_eq!(listing[1], ("zeta".to_owned(), false));
    }

    #[test]
    fn database_is_cheaply_cloneable_and_shared() {
        let db = Database::new(2).unwrap();
        db.create_table("shared", schema()).unwrap();
        let db2 = db.clone();
        db2.with_table_mut("shared", |t| t.insert(row![1i64, 1.0]))
            .unwrap();
        assert_eq!(db.table("shared").unwrap().row_count(), 1);
    }

    /// Snapshots share sealed chunk buffers with the cataloged table by
    /// pointer identity — no copy — while the open tail chunk is
    /// copy-on-write: appending after the snapshot un-shares only the tail.
    #[test]
    fn snapshot_shares_sealed_chunks_by_pointer() {
        let db = Database::new(1).unwrap();
        let mut t = Table::new(schema(), 1)
            .unwrap()
            .with_chunk_capacity(4)
            .unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, i as f64]).unwrap();
        }
        db.register_table("data", t).unwrap();

        let snap = db.table("data").unwrap();
        let live = db.table("data").unwrap();
        // 10 rows at capacity 4 → chunks of 4, 4, 2: two sealed + open tail.
        let a = snap.segment(0).chunks();
        let b = live.segment(0).chunks();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(Arc::ptr_eq(x, y), "snapshot must share chunk buffers");
        }

        // An append after the snapshot is invisible to it and un-shares
        // only the tail chunk.
        db.with_table_mut("data", |t| t.insert(row![99i64, 99.0]))
            .unwrap();
        assert_eq!(snap.row_count(), 10);
        let after = db.table("data").unwrap();
        let c = after.segment(0).chunks();
        assert!(Arc::ptr_eq(&a[0], &c[0]));
        assert!(Arc::ptr_eq(&a[1], &c[1]));
        assert!(
            !Arc::ptr_eq(&a[2], &c[2]),
            "tail chunk must be copy-on-write"
        );
        assert_eq!(a[2].len(), 2);
        assert_eq!(c[2].len(), 3);
    }

    /// A long-running mutation of table A must not block a snapshot read of
    /// unrelated table B (per-table locks, not a catalog-wide write lock).
    #[test]
    fn append_to_one_table_does_not_block_scans_of_another() {
        use std::sync::mpsc;
        use std::time::Duration;

        let db = Database::new(2).unwrap();
        db.create_table("a", schema()).unwrap();
        db.create_table("b", schema()).unwrap();
        db.with_table_mut("b", |t| t.insert(row![1i64, 1.0]))
            .unwrap();

        // Holds table A's write lock until told to release.
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let db_writer = db.clone();
        let writer = std::thread::spawn(move || {
            db_writer
                .with_table_mut("a", |t| {
                    entered_tx.send(()).unwrap();
                    release_rx
                        .recv_timeout(Duration::from_secs(10))
                        .expect("released");
                    t.insert(row![2i64, 2.0])
                })
                .unwrap();
        });
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("writer entered closure");

        // With table A mid-append, a scan of table B must complete.
        let (scanned_tx, scanned_rx) = mpsc::channel();
        let db_reader = db.clone();
        let reader = std::thread::spawn(move || {
            let rows = db_reader.table("b").unwrap().row_count();
            scanned_tx.send(rows).unwrap();
        });
        let rows = scanned_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("scan of b must not wait on a's append");
        assert_eq!(rows, 1);
        reader.join().unwrap();

        release_tx.send(()).unwrap();
        writer.join().unwrap();
        assert_eq!(db.table("a").unwrap().row_count(), 1);
    }

    /// The unique-temp-table counter is monotonic: names never repeat, a
    /// same-named regular table is never shadowed, and concurrent callers
    /// (the shape of parallel per-group IRLS fits sharing a state base name)
    /// all receive distinct tables.
    #[test]
    fn unique_temp_tables_under_concurrency() {
        let db = Database::new(1).unwrap();
        db.create_table("iter_state", schema()).unwrap();

        let names: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let db = db.clone();
                    scope.spawn(move || {
                        (0..16)
                            .map(|_| db.create_unique_temp_table("iter_state", schema()).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut unique: std::collections::HashSet<&str> =
            names.iter().map(String::as_str).collect();
        assert_eq!(unique.len(), names.len(), "temp names must be distinct");
        unique.insert("iter_state");
        assert_eq!(unique.len(), names.len() + 1, "base name never reused");
        // Dropping the temps leaves the regular table untouched.
        assert_eq!(db.drop_temp_tables(), names.len());
        assert!(db.has_table("iter_state"));
    }

    use crate::aggregate::{Aggregate, CountAggregate, SumAggregate};
    use crate::chunk::RowChunk;
    use crate::executor::Executor;
    use crate::materialize::MaterializedAggregate;

    fn count_view(db: &Database) -> MaterializedAggregate<CountAggregate> {
        let _ = db;
        MaterializedAggregate::new(CountAggregate, &Executor::new())
    }

    fn finalize_count(db: &Database, view: &str) -> Result<u64> {
        db.refresh_view(view, |state| {
            state
                .as_any_mut()
                .downcast_mut::<MaterializedAggregate<CountAggregate>>()
                .expect("count view")
                .finalize()
        })
    }

    fn sum_view() -> MaterializedAggregate<SumAggregate> {
        MaterializedAggregate::new(SumAggregate::new("v"), &Executor::new())
    }

    fn finalize_sum(db: &Database, view: &str) -> Result<f64> {
        db.refresh_view(view, |state| {
            state
                .as_any_mut()
                .downcast_mut::<MaterializedAggregate<SumAggregate>>()
                .expect("sum view")
                .finalize()
        })
    }

    /// Dropping a table and recreating the same name with **at least as many
    /// chunks** used to make views fold the new table's suffix onto the old
    /// table's partial states: the watermark's chunk counts still "fit", so
    /// shrink detection alone cannot tell the incarnations apart (a count
    /// view would even return the right number by accident — the sum exposes
    /// the fold of new-suffix values onto old partial states).  The
    /// generation check must force a rebuild instead.
    #[test]
    fn view_rebuilds_after_drop_and_recreate_same_name() {
        let db = Database::new(1).unwrap();
        db.create_table_with_chunk_capacity("events", schema(), 2)
            .unwrap();
        db.append_rows("events", (0..4).map(|i| row![i, i as f64]))
            .unwrap();
        db.register_view("v_sum", "events", Box::new(sum_view()))
            .unwrap();
        assert_eq!(finalize_sum(&db, "v_sum").unwrap(), 6.0);

        // Recreate under the same name with MORE rows (and thus ≥ chunks)
        // and different values.
        db.drop_table("events").unwrap();
        db.create_table_with_chunk_capacity("events", schema(), 2)
            .unwrap();
        db.append_rows("events", (10..16).map(|i| row![i, i as f64]))
            .unwrap();
        assert_eq!(
            finalize_sum(&db, "v_sum").unwrap(),
            75.0,
            "view must rebuild against the new incarnation, not fold its \
             suffix onto the old table's partial sums"
        );
    }

    /// `replace_table` with equal or greater chunk counts is the same trap:
    /// the replacement's fresh generation must trigger a rebuild.
    #[test]
    fn view_rebuilds_after_replace_with_equal_or_more_chunks() {
        let db = Database::new(1).unwrap();
        db.create_table_with_chunk_capacity("events", schema(), 2)
            .unwrap();
        db.append_rows("events", (0..4).map(|i| row![i, i as f64]))
            .unwrap();
        db.register_view("v_sum", "events", Box::new(sum_view()))
            .unwrap();
        assert_eq!(finalize_sum(&db, "v_sum").unwrap(), 6.0);

        // Equal chunk layout (same row count), different contents: nothing
        // sits past the watermark, so a stale view would keep the old sum.
        let mut equal = Table::new(schema(), 1)
            .unwrap()
            .with_chunk_capacity(2)
            .unwrap();
        for i in 100..104 {
            equal.insert(row![i, i as f64]).unwrap();
        }
        db.replace_table("events", equal).unwrap();
        assert_eq!(
            finalize_sum(&db, "v_sum").unwrap(),
            406.0,
            "equal-layout replacement must rebuild, not keep the stale sum"
        );

        // Greater chunk count.
        let mut bigger = Table::new(schema(), 1)
            .unwrap()
            .with_chunk_capacity(2)
            .unwrap();
        for i in 0..10 {
            bigger.insert(row![i, i as f64]).unwrap();
        }
        db.replace_table("events", bigger).unwrap();
        assert_eq!(finalize_sum(&db, "v_sum").unwrap(), 45.0);
    }

    /// `truncate_table` bumps the generation too.
    #[test]
    fn view_rebuilds_after_truncate_table() {
        let db = Database::new(2).unwrap();
        db.create_table("events", schema()).unwrap();
        db.append_rows("events", (0..5).map(|i| row![i as i64, i as f64]))
            .unwrap();
        db.register_view("n", "events", Box::new(count_view(&db)))
            .unwrap();
        assert_eq!(finalize_count(&db, "n").unwrap(), 5);
        db.truncate_table("events").unwrap();
        assert_eq!(finalize_count(&db, "n").unwrap(), 0);
        db.append_rows("events", (0..3).map(|i| row![i as i64, i as f64]))
            .unwrap();
        assert_eq!(finalize_count(&db, "n").unwrap(), 3);
    }

    /// A counting aggregate that refuses rows whose `v` equals the poison
    /// value — the deliberately failing view of the append-rows contract.
    #[derive(Clone)]
    struct PoisonAggregate;

    impl Aggregate for PoisonAggregate {
        type State = u64;
        type Output = u64;

        fn initial_state(&self) -> u64 {
            0
        }

        fn transition(&self, state: &mut u64, row: &Row, schema: &Schema) -> Result<()> {
            let idx = schema.index_of("v")?;
            if row.get(idx) == &crate::value::Value::Double(13.0) {
                return Err(EngineError::invalid("poison row"));
            }
            *state += 1;
            Ok(())
        }

        fn transition_chunk(
            &self,
            state: &mut u64,
            chunk: &RowChunk,
            schema: &Schema,
        ) -> Result<()> {
            crate::aggregate::transition_chunk_by_rows(self, state, chunk, schema)
        }

        fn merge(&self, left: u64, right: u64) -> u64 {
            left + right
        }

        fn finalize(&self, state: u64) -> Result<u64> {
            Ok(state)
        }
    }

    /// When a view fails to absorb an append, the insert must stay
    /// committed, the *other* views must still absorb, the failing view must
    /// be marked for rebuild, and the typed error must name it.
    #[test]
    fn append_commits_despite_failing_view_and_names_it() {
        let db = Database::new(1).unwrap();
        db.create_table("events", schema()).unwrap();
        db.register_view(
            "flaky",
            "events",
            Box::new(MaterializedAggregate::new(
                PoisonAggregate,
                &Executor::new(),
            )),
        )
        .unwrap();
        db.register_view("solid", "events", Box::new(count_view(&db)))
            .unwrap();

        db.append_rows("events", [row![1i64, 1.0]]).unwrap();
        let err = db
            .append_rows("events", [row![2i64, 13.0], row![3i64, 3.0]])
            .unwrap_err();
        match &err {
            EngineError::ViewAbsorbFailed { table, failures } => {
                assert_eq!(table, "events");
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].0, "flaky");
            }
            other => panic!("expected ViewAbsorbFailed, got {other:?}"),
        }
        // The insert committed despite the view failure...
        assert_eq!(db.table("events").unwrap().row_count(), 3);
        // ...the healthy view absorbed the rows...
        assert_eq!(finalize_count(&db, "solid").unwrap(), 3);
        // ...and the failing view is flagged for rebuild.
        {
            let views = read_lock(&db.views);
            let guard = views["flaky"].state.lock().unwrap();
            let view = guard
                .as_any()
                .downcast_ref::<MaterializedAggregate<PoisonAggregate>>()
                .expect("poison view");
            assert!(view.needs_rebuild());
        }
        // Refreshing it restarts from scratch and hits the poison row again.
        db.refresh_view("flaky", |_| Ok(())).unwrap_err();
    }
}
