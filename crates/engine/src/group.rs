//! Typed group-by keys and per-chunk group partitioning.
//!
//! Grouping used to key states by `Value::to_string()`, which is both slow
//! (one heap allocation and one formatting pass per row) and wrong at the
//! edges: `-0.0` and `0.0` render identically but are distinct IEEE-754
//! values, `NaN` formats as a non-comparable string, and numerically ordered
//! keys sort lexicographically (`"10" < "9"`).  [`KeyPart`] replaces the
//! string with a typed key part: `Eq`/`Hash` compare floating-point values by
//! bit pattern and ordering uses [`f64::total_cmp`], so every [`Value`] —
//! including NaN and signed zero — lands in exactly one group and groups
//! have a deterministic total order.  Parts of different runtime types order
//! by type first (NULL < boolean < bigint < double < text < arrays), so
//! mixed-type grouping is deterministic too.
//!
//! A [`GroupKey`] is a *composite* of one part per grouping column — the
//! paper's `grouping_cols` is an arbitrary column list, so
//! `group_by(["a", "b"])` keys each group by the tuple of its columns'
//! values.  Keys compare and hash part-wise (lexicographic over the parts,
//! exactly SQL's multi-column `GROUP BY` ordering) and the single-column case
//! stays allocation-free: a one-part key stores its part inline.

use crate::chunk::{ColumnChunk, RowChunk, SelectionMask};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// An `f64` with total equality, ordering and hashing: bit-pattern equality
/// (distinguishing `-0.0` from `0.0`, and treating identical NaNs as equal)
/// and the IEEE-754 `totalOrder` predicate via [`f64::total_cmp`].
#[derive(Debug, Clone, Copy)]
pub struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for TotalF64 {}

impl Hash for TotalF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One column's contribution to a grouping key, derived from a [`Value`].
///
/// Unlike [`Value`] this is `Eq + Hash + Ord`, so it can key a hash map and
/// the resulting groups can be emitted in a deterministic total order.  The
/// variant order defines the cross-type ordering (`NULL` groups sort first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyPart {
    /// SQL NULL (all NULLs form one group, as in `GROUP BY`).
    Null,
    /// `boolean` key.
    Bool(bool),
    /// `bigint` key.
    Int(i64),
    /// `double precision` key (bit-pattern identity, total order).
    Double(TotalF64),
    /// `text` key.
    Text(String),
    /// `double precision[]` key.
    DoubleArray(Vec<TotalF64>),
    /// `bigint[]` key.
    IntArray(Vec<i64>),
    /// `text[]` key.
    TextArray(Vec<String>),
}

impl KeyPart {
    /// Derives the key part for a value.
    pub fn from_value(value: &Value) -> Self {
        match value {
            Value::Null => KeyPart::Null,
            Value::Bool(b) => KeyPart::Bool(*b),
            Value::Int(v) => KeyPart::Int(*v),
            Value::Double(v) => KeyPart::Double(TotalF64(*v)),
            Value::Text(s) => KeyPart::Text(s.clone()),
            Value::DoubleArray(a) => KeyPart::DoubleArray(a.iter().map(|&v| TotalF64(v)).collect()),
            Value::IntArray(a) => KeyPart::IntArray(a.clone()),
            Value::TextArray(a) => KeyPart::TextArray(a.clone()),
        }
    }

    /// Reconstructs the representative [`Value`] of this key part.  The
    /// round trip through [`KeyPart::from_value`] is exact, including NaN
    /// payloads and signed zeros.
    pub fn into_value(self) -> Value {
        match self {
            KeyPart::Null => Value::Null,
            KeyPart::Bool(b) => Value::Bool(b),
            KeyPart::Int(v) => Value::Int(v),
            KeyPart::Double(v) => Value::Double(v.0),
            KeyPart::Text(s) => Value::Text(s),
            KeyPart::DoubleArray(a) => Value::DoubleArray(a.into_iter().map(|v| v.0).collect()),
            KeyPart::IntArray(a) => Value::IntArray(a),
            KeyPart::TextArray(a) => Value::TextArray(a),
        }
    }

    /// Whether this part equals the key part of row `i` of a column chunk,
    /// checked in place — no allocation, unlike building the row's part with
    /// [`KeyPart::from_column`] first.  The grouped scan uses this to probe
    /// the previous row's key, since group values cluster in practice (and
    /// always do under hash distribution on the group column).
    pub fn matches_column(&self, column: &ColumnChunk, i: usize) -> bool {
        if column.nulls().is_null(i) {
            return matches!(self, KeyPart::Null);
        }
        match (self, column) {
            (KeyPart::Double(key), ColumnChunk::Double { values, .. }) => {
                key.0.to_bits() == values[i].to_bits()
            }
            (KeyPart::Int(key), ColumnChunk::Int { values, .. }) => *key == values[i],
            (KeyPart::Bool(key), ColumnChunk::Bool { values, .. }) => *key == values[i],
            (KeyPart::Text(key), ColumnChunk::Text { values, .. }) => *key == values[i],
            (
                KeyPart::DoubleArray(key),
                ColumnChunk::DoubleArray {
                    values, offsets, ..
                },
            ) => {
                let row = &values[offsets[i]..offsets[i + 1]];
                key.len() == row.len()
                    && key
                        .iter()
                        .zip(row)
                        .all(|(a, b)| a.0.to_bits() == b.to_bits())
            }
            (
                KeyPart::IntArray(key),
                ColumnChunk::IntArray {
                    values, offsets, ..
                },
            ) => key.as_slice() == &values[offsets[i]..offsets[i + 1]],
            (
                KeyPart::TextArray(key),
                ColumnChunk::TextArray {
                    values, offsets, ..
                },
            ) => key.as_slice() == &values[offsets[i]..offsets[i + 1]],
            _ => false,
        }
    }

    /// The key part of row `i` of a column chunk, read straight from the
    /// column buffer (no [`Value`] materialization for scalar columns).
    pub fn from_column(column: &ColumnChunk, i: usize) -> Self {
        if column.nulls().is_null(i) {
            return KeyPart::Null;
        }
        match column {
            ColumnChunk::Double { values, .. } => KeyPart::Double(TotalF64(values[i])),
            ColumnChunk::Int { values, .. } => KeyPart::Int(values[i]),
            ColumnChunk::Bool { values, .. } => KeyPart::Bool(values[i]),
            ColumnChunk::Text { values, .. } => KeyPart::Text(values[i].clone()),
            ColumnChunk::DoubleArray {
                values, offsets, ..
            } => KeyPart::DoubleArray(
                values[offsets[i]..offsets[i + 1]]
                    .iter()
                    .map(|&v| TotalF64(v))
                    .collect(),
            ),
            ColumnChunk::IntArray {
                values, offsets, ..
            } => KeyPart::IntArray(values[offsets[i]..offsets[i + 1]].to_vec()),
            ColumnChunk::TextArray {
                values, offsets, ..
            } => KeyPart::TextArray(values[offsets[i]..offsets[i + 1]].to_vec()),
        }
    }
}

/// The composite parts, stored small-vec style: the single-column common case
/// holds its part inline (no heap indirection beyond what the part itself
/// owns), composite keys box their part slice.
#[derive(Debug, Clone)]
enum KeyParts {
    One(KeyPart),
    Many(Box<[KeyPart]>),
}

/// A grouping key: one [`KeyPart`] per grouping column.
///
/// Keys compare, hash and order part-wise — lexicographic over the parts
/// with [`KeyPart`]'s per-part semantics (bit-pattern float equality, total
/// order, NULL-first) — so a composite key behaves exactly like SQL's
/// multi-column `GROUP BY` tuple.  Keys of different arity never compare
/// equal (shorter tuples order first on a shared prefix), though in practice
/// every key produced by one grouped scan has the same arity.
#[derive(Debug, Clone)]
pub struct GroupKey(KeyParts);

impl GroupKey {
    /// A single-column key from one part.
    pub fn single(part: KeyPart) -> Self {
        GroupKey(KeyParts::One(part))
    }

    /// A key from one part per grouping column.  One-part keys are stored
    /// inline ([`GroupKey::single`]); anything else is boxed.
    pub fn composite(parts: Vec<KeyPart>) -> Self {
        let mut parts = parts;
        if parts.len() == 1 {
            GroupKey(KeyParts::One(parts.pop().expect("length checked")))
        } else {
            GroupKey(KeyParts::Many(parts.into_boxed_slice()))
        }
    }

    /// Derives a single-column key for a value.
    pub fn from_value(value: &Value) -> Self {
        GroupKey::single(KeyPart::from_value(value))
    }

    /// Derives a composite key from one value per grouping column.  A
    /// single-value iterator produces an inline one-part key without heap
    /// allocation, matching [`GroupKey::from_value`].
    pub fn from_values<'a, I>(values: I) -> Self
    where
        I: IntoIterator<Item = &'a Value>,
    {
        let mut iter = values.into_iter().map(KeyPart::from_value);
        match (iter.next(), iter.next()) {
            (Some(only), None) => GroupKey::single(only),
            (first, second) => {
                let mut parts: Vec<KeyPart> = first.into_iter().chain(second).collect();
                parts.extend(iter);
                GroupKey::composite(parts)
            }
        }
    }

    /// The key's parts, one per grouping column.
    pub fn parts(&self) -> &[KeyPart] {
        match &self.0 {
            KeyParts::One(part) => std::slice::from_ref(part),
            KeyParts::Many(parts) => parts,
        }
    }

    /// Number of grouping columns the key spans.
    pub fn arity(&self) -> usize {
        self.parts().len()
    }

    /// Whether the key spans more than one grouping column.
    pub fn is_composite(&self) -> bool {
        self.arity() > 1
    }

    /// Reconstructs the representative [`Value`] of a *single-column* key's
    /// group.  The round trip through [`GroupKey::from_value`] is exact,
    /// including NaN payloads and signed zeros.
    ///
    /// # Panics
    /// Panics on a composite key — use [`GroupKey::into_values`] when the
    /// grouping may span several columns.
    #[track_caller]
    pub fn into_value(self) -> Value {
        match self.0 {
            KeyParts::One(part) => part.into_value(),
            KeyParts::Many(parts) => panic!(
                "into_value on a composite key of {} parts; use into_values",
                parts.len()
            ),
        }
    }

    /// Reconstructs the representative [`Value`]s of this key's group, one
    /// per grouping column.  Exact, like [`GroupKey::into_value`].
    pub fn into_values(self) -> Vec<Value> {
        match self.0 {
            KeyParts::One(part) => vec![part.into_value()],
            KeyParts::Many(parts) => parts
                .into_vec()
                .into_iter()
                .map(KeyPart::into_value)
                .collect(),
        }
    }

    /// Whether this key equals the key of row `i` over the given key
    /// columns, checked in place (see [`KeyPart::matches_column`]).  Returns
    /// `false` when the arity differs from the column count.
    pub fn matches_columns(&self, columns: &[&ColumnChunk], i: usize) -> bool {
        let parts = self.parts();
        parts.len() == columns.len()
            && parts
                .iter()
                .zip(columns)
                .all(|(part, column)| part.matches_column(column, i))
    }

    /// The key of row `i` over the given key columns, read straight from the
    /// column buffers.
    pub fn from_columns(columns: &[&ColumnChunk], i: usize) -> Self {
        if let [column] = columns {
            return GroupKey::single(KeyPart::from_column(column, i));
        }
        GroupKey::composite(
            columns
                .iter()
                .map(|column| KeyPart::from_column(column, i))
                .collect(),
        )
    }
}

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.parts() == other.parts()
    }
}

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the part sequence itself (not the slice, whose `Hash` prefixes
        // the length) so a one-part key hashes identically whether it is
        // stored inline or boxed.
        for part in self.parts() {
            part.hash(state);
        }
    }
}

impl PartialOrd for GroupKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GroupKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.parts().cmp(other.parts())
    }
}

impl From<KeyPart> for GroupKey {
    fn from(part: KeyPart) -> Self {
        GroupKey::single(part)
    }
}

/// One group discovered inside a chunk: its key, the selection mask of its
/// rows, and how many rows it has.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkGroup {
    /// The group's key.
    pub key: GroupKey,
    /// Mask over the chunk's rows selecting exactly this group's rows.
    pub mask: SelectionMask,
    /// Number of selected rows (cached `mask.count_selected()`).
    pub rows: usize,
}

/// Partitions a chunk's rows by the (possibly composite) key over
/// `column_indices`, returning one [`ChunkGroup`] per distinct key in
/// first-appearance order.  The masks are disjoint and together cover every
/// row of the chunk.
pub fn partition_by_group(chunk: &RowChunk, column_indices: &[usize]) -> Vec<ChunkGroup> {
    let columns: Vec<&ColumnChunk> = column_indices.iter().map(|&c| chunk.column(c)).collect();
    let rows = chunk.len();
    let mut slots: HashMap<GroupKey, usize> = HashMap::new();
    let mut groups: Vec<ChunkGroup> = Vec::new();
    for i in 0..rows {
        let key = GroupKey::from_columns(&columns, i);
        let slot = *slots.entry(key.clone()).or_insert_with(|| {
            groups.push(ChunkGroup {
                key,
                mask: SelectionMask::none(rows),
                rows: 0,
            });
            groups.len() - 1
        });
        groups[slot].mask.set(i, true);
        groups[slot].rows += 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType, Schema};

    #[test]
    fn signed_zero_and_nan_form_distinct_stable_groups() {
        let pos = GroupKey::from_value(&Value::Double(0.0));
        let neg = GroupKey::from_value(&Value::Double(-0.0));
        let nan = GroupKey::from_value(&Value::Double(f64::NAN));
        assert_ne!(pos, neg, "-0.0 and 0.0 must be distinct groups");
        assert_eq!(nan, GroupKey::from_value(&Value::Double(f64::NAN)));
        assert!(neg < pos, "total order puts -0.0 before 0.0");
        assert!(nan > pos, "positive NaN sorts after all finite values");
        // The round trip preserves the exact bit pattern.
        match GroupKey::from_value(&Value::Double(-0.0)).into_value() {
            Value::Double(v) => assert_eq!(v.to_bits(), (-0.0f64).to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_type_keys_have_a_deterministic_total_order() {
        let mut keys = vec![
            GroupKey::from_value(&Value::Text("a".into())),
            GroupKey::from_value(&Value::Double(1.5)),
            GroupKey::from_value(&Value::Int(10)),
            GroupKey::from_value(&Value::Int(9)),
            GroupKey::from_value(&Value::Null),
            GroupKey::from_value(&Value::Bool(true)),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                GroupKey::single(KeyPart::Null),
                GroupKey::single(KeyPart::Bool(true)),
                GroupKey::single(KeyPart::Int(9)),
                GroupKey::single(KeyPart::Int(10)), // numeric, not lexicographic, order
                GroupKey::single(KeyPart::Double(TotalF64(1.5))),
                GroupKey::single(KeyPart::Text("a".into())),
            ]
        );
    }

    #[test]
    fn composite_keys_compare_hash_and_order_part_wise() {
        use std::collections::hash_map::DefaultHasher;

        let ab = GroupKey::from_values([&Value::Text("a".into()), &Value::Int(1)]);
        let ab2 = GroupKey::from_values([&Value::Text("a".into()), &Value::Int(1)]);
        let ac = GroupKey::from_values([&Value::Text("a".into()), &Value::Int(2)]);
        let bb = GroupKey::from_values([&Value::Text("b".into()), &Value::Int(1)]);
        assert_eq!(ab, ab2);
        assert_ne!(ab, ac);
        assert!(ab < ac, "second part breaks the tie");
        assert!(ac < bb, "first part dominates");
        assert_eq!(ab.arity(), 2);
        assert!(ab.is_composite());
        assert_eq!(
            ab.clone().into_values(),
            vec![Value::Text("a".into()), Value::Int(1)]
        );

        // A one-part composite normalizes to the inline representation and
        // hashes/compares identically to the single-part constructor.
        let single = GroupKey::composite(vec![KeyPart::Int(7)]);
        assert_eq!(single, GroupKey::from_value(&Value::Int(7)));
        let hash_of = |key: &GroupKey| {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            h.finish()
        };
        assert_eq!(
            hash_of(&single),
            hash_of(&GroupKey::from_value(&Value::Int(7)))
        );

        // NULL and NaN parts keep their group-key semantics inside a tuple.
        let null_nan = GroupKey::from_values([&Value::Null, &Value::Double(f64::NAN)]);
        assert_eq!(
            null_nan,
            GroupKey::from_values([&Value::Null, &Value::Double(f64::NAN)])
        );
        let null_zero = GroupKey::from_values([&Value::Null, &Value::Double(0.0)]);
        let null_negzero = GroupKey::from_values([&Value::Null, &Value::Double(-0.0)]);
        assert_ne!(null_zero, null_negzero);
        assert!(null_negzero < null_zero);

        // Different arity never compares equal; shorter prefixes sort first.
        let a = GroupKey::from_values([&Value::Text("a".into())]);
        assert_ne!(a, ab);
        assert!(a < ab);
    }

    #[test]
    fn matches_columns_agrees_with_from_columns() {
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Text),
            Column::new("d", ColumnType::Double),
            Column::new("a", ColumnType::DoubleArray),
        ]);
        let mut chunk = RowChunk::new(&schema);
        chunk
            .push_values(row!["x", 0.0, vec![1.0, 2.0]].values())
            .unwrap();
        chunk
            .push_values(row!["y", -0.0, vec![1.0]].values())
            .unwrap();
        chunk
            .push_values(&[Value::Null, Value::Null, Value::Null])
            .unwrap();
        // Every single column and every column pair behave consistently.
        let column_sets: &[&[usize]] = &[&[0], &[1], &[2], &[0, 1], &[1, 2], &[2, 0], &[0, 1, 2]];
        for set in column_sets {
            let columns: Vec<&ColumnChunk> = set.iter().map(|&c| chunk.column(c)).collect();
            for i in 0..chunk.len() {
                let key = GroupKey::from_columns(&columns, i);
                assert_eq!(key.arity(), set.len());
                for j in 0..chunk.len() {
                    assert_eq!(
                        key.matches_columns(&columns, j),
                        key == GroupKey::from_columns(&columns, j),
                        "columns {set:?}, key of row {i} probed against row {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_covers_all_rows_in_first_seen_order() {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("v", ColumnType::Double),
        ]);
        let mut chunk = RowChunk::new(&schema);
        for (grp, v) in [("b", 1.0), ("a", 2.0), ("b", 3.0), ("a", 4.0), ("c", 5.0)] {
            chunk.push_values(row![grp, v].values()).unwrap();
        }
        chunk
            .push_values(&[Value::Null, Value::Double(6.0)])
            .unwrap();

        let groups = partition_by_group(&chunk, &[0]);
        assert_eq!(groups.len(), 4);
        assert_eq!(
            groups[0].key,
            GroupKey::from_value(&Value::Text("b".into()))
        );
        assert_eq!(groups[0].rows, 2);
        assert_eq!(
            groups[1].key,
            GroupKey::from_value(&Value::Text("a".into()))
        );
        assert_eq!(
            groups[2].key,
            GroupKey::from_value(&Value::Text("c".into()))
        );
        assert_eq!(groups[3].key, GroupKey::single(KeyPart::Null));
        let total: usize = groups.iter().map(|g| g.rows).sum();
        assert_eq!(total, chunk.len());
        // Masks are disjoint.
        for i in 0..chunk.len() {
            let owners = groups.iter().filter(|g| g.mask.is_selected(i)).count();
            assert_eq!(owners, 1, "row {i} must belong to exactly one group");
        }
        // Gathering group "a" keeps its rows in order.
        let a = &groups[1];
        let sub = chunk.gather(&a.mask);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.value(0, 1), Value::Double(2.0));
        assert_eq!(sub.value(1, 1), Value::Double(4.0));
    }

    #[test]
    fn composite_partition_distinguishes_tuples() {
        let schema = Schema::new(vec![
            Column::new("a", ColumnType::Text),
            Column::new("b", ColumnType::Int),
        ]);
        let mut chunk = RowChunk::new(&schema);
        for (a, b) in [("x", 1), ("x", 2), ("y", 1), ("x", 1)] {
            chunk.push_values(row![a, b].values()).unwrap();
        }
        // Single-column partition: 2 groups on "a", 2 on "b".
        assert_eq!(partition_by_group(&chunk, &[0]).len(), 2);
        assert_eq!(partition_by_group(&chunk, &[1]).len(), 2);
        // Composite partition: 3 distinct (a, b) tuples, ("x", 1) twice.
        let groups = partition_by_group(&chunk, &[0, 1]);
        assert_eq!(groups.len(), 3);
        assert_eq!(
            groups[0].key,
            GroupKey::from_values([&Value::Text("x".into()), &Value::Int(1)])
        );
        assert_eq!(groups[0].rows, 2);
    }

    #[test]
    fn array_keys_group_by_content() {
        let schema = Schema::new(vec![Column::new("k", ColumnType::DoubleArray)]);
        let mut chunk = RowChunk::new(&schema);
        chunk.push_values(row![vec![1.0, 2.0]].values()).unwrap();
        chunk.push_values(row![vec![1.0, 2.0]].values()).unwrap();
        chunk.push_values(row![vec![2.0]].values()).unwrap();
        let groups = partition_by_group(&chunk, &[0]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].rows, 2);
    }
}
