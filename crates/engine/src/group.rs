//! Typed group-by keys and per-chunk group partitioning.
//!
//! Grouping used to key states by `Value::to_string()`, which is both slow
//! (one heap allocation and one formatting pass per row) and wrong at the
//! edges: `-0.0` and `0.0` render identically but are distinct IEEE-754
//! values, `NaN` formats as a non-comparable string, and numerically ordered
//! keys sort lexicographically (`"10" < "9"`).  [`GroupKey`] replaces the
//! string with a typed key: `Eq`/`Hash` compare floating-point values by bit
//! pattern and ordering uses [`f64::total_cmp`], so every [`Value`] —
//! including NaN and signed zero — lands in exactly one group and groups
//! have a deterministic total order.  Keys of different runtime types order
//! by type first (NULL < boolean < bigint < double < text < arrays), so
//! mixed-type grouping is deterministic too.

use crate::chunk::{ColumnChunk, RowChunk, SelectionMask};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// An `f64` with total equality, ordering and hashing: bit-pattern equality
/// (distinguishing `-0.0` from `0.0`, and treating identical NaNs as equal)
/// and the IEEE-754 `totalOrder` predicate via [`f64::total_cmp`].
#[derive(Debug, Clone, Copy)]
pub struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for TotalF64 {}

impl Hash for TotalF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A grouping key derived from a [`Value`].
///
/// Unlike [`Value`] this is `Eq + Hash + Ord`, so it can key a hash map and
/// the resulting groups can be emitted in a deterministic total order.  The
/// variant order defines the cross-type ordering (`NULL` groups sort first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// SQL NULL (all NULLs form one group, as in `GROUP BY`).
    Null,
    /// `boolean` key.
    Bool(bool),
    /// `bigint` key.
    Int(i64),
    /// `double precision` key (bit-pattern identity, total order).
    Double(TotalF64),
    /// `text` key.
    Text(String),
    /// `double precision[]` key.
    DoubleArray(Vec<TotalF64>),
    /// `bigint[]` key.
    IntArray(Vec<i64>),
    /// `text[]` key.
    TextArray(Vec<String>),
}

impl GroupKey {
    /// Derives the key for a value.
    pub fn from_value(value: &Value) -> Self {
        match value {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(v) => GroupKey::Int(*v),
            Value::Double(v) => GroupKey::Double(TotalF64(*v)),
            Value::Text(s) => GroupKey::Text(s.clone()),
            Value::DoubleArray(a) => {
                GroupKey::DoubleArray(a.iter().map(|&v| TotalF64(v)).collect())
            }
            Value::IntArray(a) => GroupKey::IntArray(a.clone()),
            Value::TextArray(a) => GroupKey::TextArray(a.clone()),
        }
    }

    /// Reconstructs the representative [`Value`] of this key's group.  The
    /// round trip through [`GroupKey::from_value`] is exact, including NaN
    /// payloads and signed zeros.
    pub fn into_value(self) -> Value {
        match self {
            GroupKey::Null => Value::Null,
            GroupKey::Bool(b) => Value::Bool(b),
            GroupKey::Int(v) => Value::Int(v),
            GroupKey::Double(v) => Value::Double(v.0),
            GroupKey::Text(s) => Value::Text(s),
            GroupKey::DoubleArray(a) => Value::DoubleArray(a.into_iter().map(|v| v.0).collect()),
            GroupKey::IntArray(a) => Value::IntArray(a),
            GroupKey::TextArray(a) => Value::TextArray(a),
        }
    }

    /// Whether this key equals the key of row `i` of a column chunk, checked
    /// in place — no allocation, unlike building the row's key with
    /// [`GroupKey::from_column`] first.  The grouped scan uses this to probe
    /// the previous row's key, since group values cluster in practice (and
    /// always do under hash distribution on the group column).
    pub fn matches_column(&self, column: &ColumnChunk, i: usize) -> bool {
        if column.nulls().is_null(i) {
            return matches!(self, GroupKey::Null);
        }
        match (self, column) {
            (GroupKey::Double(key), ColumnChunk::Double { values, .. }) => {
                key.0.to_bits() == values[i].to_bits()
            }
            (GroupKey::Int(key), ColumnChunk::Int { values, .. }) => *key == values[i],
            (GroupKey::Bool(key), ColumnChunk::Bool { values, .. }) => *key == values[i],
            (GroupKey::Text(key), ColumnChunk::Text { values, .. }) => *key == values[i],
            (
                GroupKey::DoubleArray(key),
                ColumnChunk::DoubleArray {
                    values, offsets, ..
                },
            ) => {
                let row = &values[offsets[i]..offsets[i + 1]];
                key.len() == row.len()
                    && key
                        .iter()
                        .zip(row)
                        .all(|(a, b)| a.0.to_bits() == b.to_bits())
            }
            (
                GroupKey::IntArray(key),
                ColumnChunk::IntArray {
                    values, offsets, ..
                },
            ) => key.as_slice() == &values[offsets[i]..offsets[i + 1]],
            (
                GroupKey::TextArray(key),
                ColumnChunk::TextArray {
                    values, offsets, ..
                },
            ) => key.as_slice() == &values[offsets[i]..offsets[i + 1]],
            _ => false,
        }
    }

    /// The key of row `i` of a column chunk, read straight from the column
    /// buffer (no [`Value`] materialization for scalar columns).
    pub fn from_column(column: &ColumnChunk, i: usize) -> Self {
        if column.nulls().is_null(i) {
            return GroupKey::Null;
        }
        match column {
            ColumnChunk::Double { values, .. } => GroupKey::Double(TotalF64(values[i])),
            ColumnChunk::Int { values, .. } => GroupKey::Int(values[i]),
            ColumnChunk::Bool { values, .. } => GroupKey::Bool(values[i]),
            ColumnChunk::Text { values, .. } => GroupKey::Text(values[i].clone()),
            ColumnChunk::DoubleArray {
                values, offsets, ..
            } => GroupKey::DoubleArray(
                values[offsets[i]..offsets[i + 1]]
                    .iter()
                    .map(|&v| TotalF64(v))
                    .collect(),
            ),
            ColumnChunk::IntArray {
                values, offsets, ..
            } => GroupKey::IntArray(values[offsets[i]..offsets[i + 1]].to_vec()),
            ColumnChunk::TextArray {
                values, offsets, ..
            } => GroupKey::TextArray(values[offsets[i]..offsets[i + 1]].to_vec()),
        }
    }
}

/// One group discovered inside a chunk: its key, the selection mask of its
/// rows, and how many rows it has.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkGroup {
    /// The group's key.
    pub key: GroupKey,
    /// Mask over the chunk's rows selecting exactly this group's rows.
    pub mask: SelectionMask,
    /// Number of selected rows (cached `mask.count_selected()`).
    pub rows: usize,
}

/// Partitions a chunk's rows by the key in `column_idx`, returning one
/// [`ChunkGroup`] per distinct key in first-appearance order.  The masks are
/// disjoint and together cover every row of the chunk.
pub fn partition_by_group(chunk: &RowChunk, column_idx: usize) -> Vec<ChunkGroup> {
    let column = chunk.column(column_idx);
    let rows = chunk.len();
    let mut slots: HashMap<GroupKey, usize> = HashMap::new();
    let mut groups: Vec<ChunkGroup> = Vec::new();
    for i in 0..rows {
        let key = GroupKey::from_column(column, i);
        let slot = *slots.entry(key.clone()).or_insert_with(|| {
            groups.push(ChunkGroup {
                key,
                mask: SelectionMask::none(rows),
                rows: 0,
            });
            groups.len() - 1
        });
        groups[slot].mask.set(i, true);
        groups[slot].rows += 1;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType, Schema};

    #[test]
    fn signed_zero_and_nan_form_distinct_stable_groups() {
        let pos = GroupKey::from_value(&Value::Double(0.0));
        let neg = GroupKey::from_value(&Value::Double(-0.0));
        let nan = GroupKey::from_value(&Value::Double(f64::NAN));
        assert_ne!(pos, neg, "-0.0 and 0.0 must be distinct groups");
        assert_eq!(nan, GroupKey::from_value(&Value::Double(f64::NAN)));
        assert!(neg < pos, "total order puts -0.0 before 0.0");
        assert!(nan > pos, "positive NaN sorts after all finite values");
        // The round trip preserves the exact bit pattern.
        match GroupKey::from_value(&Value::Double(-0.0)).into_value() {
            Value::Double(v) => assert_eq!(v.to_bits(), (-0.0f64).to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_type_keys_have_a_deterministic_total_order() {
        let mut keys = vec![
            GroupKey::from_value(&Value::Text("a".into())),
            GroupKey::from_value(&Value::Double(1.5)),
            GroupKey::from_value(&Value::Int(10)),
            GroupKey::from_value(&Value::Int(9)),
            GroupKey::from_value(&Value::Null),
            GroupKey::from_value(&Value::Bool(true)),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                GroupKey::Null,
                GroupKey::Bool(true),
                GroupKey::Int(9),
                GroupKey::Int(10), // numeric, not lexicographic, order
                GroupKey::Double(TotalF64(1.5)),
                GroupKey::Text("a".into()),
            ]
        );
    }

    #[test]
    fn matches_column_agrees_with_from_column() {
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Text),
            Column::new("d", ColumnType::Double),
            Column::new("a", ColumnType::DoubleArray),
        ]);
        let mut chunk = RowChunk::new(&schema);
        chunk
            .push_values(row!["x", 0.0, vec![1.0, 2.0]].values())
            .unwrap();
        chunk
            .push_values(row!["y", -0.0, vec![1.0]].values())
            .unwrap();
        chunk
            .push_values(&[Value::Null, Value::Null, Value::Null])
            .unwrap();
        for col in 0..3 {
            let column = chunk.column(col);
            for i in 0..chunk.len() {
                let key = GroupKey::from_column(column, i);
                for j in 0..chunk.len() {
                    assert_eq!(
                        key.matches_column(column, j),
                        key == GroupKey::from_column(column, j),
                        "col {col}, key of row {i} probed against row {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_covers_all_rows_in_first_seen_order() {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("v", ColumnType::Double),
        ]);
        let mut chunk = RowChunk::new(&schema);
        for (grp, v) in [("b", 1.0), ("a", 2.0), ("b", 3.0), ("a", 4.0), ("c", 5.0)] {
            chunk.push_values(row![grp, v].values()).unwrap();
        }
        chunk
            .push_values(&[Value::Null, Value::Double(6.0)])
            .unwrap();

        let groups = partition_by_group(&chunk, 0);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].key, GroupKey::Text("b".into()));
        assert_eq!(groups[0].rows, 2);
        assert_eq!(groups[1].key, GroupKey::Text("a".into()));
        assert_eq!(groups[2].key, GroupKey::Text("c".into()));
        assert_eq!(groups[3].key, GroupKey::Null);
        let total: usize = groups.iter().map(|g| g.rows).sum();
        assert_eq!(total, chunk.len());
        // Masks are disjoint.
        for i in 0..chunk.len() {
            let owners = groups.iter().filter(|g| g.mask.is_selected(i)).count();
            assert_eq!(owners, 1, "row {i} must belong to exactly one group");
        }
        // Gathering group "a" keeps its rows in order.
        let a = &groups[1];
        let sub = chunk.gather(&a.mask);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.value(0, 1), Value::Double(2.0));
        assert_eq!(sub.value(1, 1), Value::Double(4.0));
    }

    #[test]
    fn array_keys_group_by_content() {
        let schema = Schema::new(vec![Column::new("k", ColumnType::DoubleArray)]);
        let mut chunk = RowChunk::new(&schema);
        chunk.push_values(row![vec![1.0, 2.0]].values()).unwrap();
        chunk.push_values(row![vec![1.0, 2.0]].values()).unwrap();
        chunk.push_values(row![vec![2.0]].values()).unwrap();
        let groups = partition_by_group(&chunk, 0);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].rows, 2);
    }
}
