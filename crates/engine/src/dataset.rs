//! Lazy, composable scan descriptions — the engine half of the MADlib-style
//! uniform calling convention.
//!
//! MADlib's defining interface decision (paper Sections 3–4) is that every
//! method is invoked the same way: `method_train(source_table, output,
//! dep_var, indep_vars, grouping_cols)` — one call, optionally one model
//! *per group*.  [`Dataset`] is the Rust shape of the first half of that
//! convention: a description of *which rows* a computation runs over —
//! a source table, an optional predicate (the `WHERE` clause) and optional
//! grouping columns (`grouping_cols`) — built lazily:
//!
//! ```
//! # use madlib_engine::{Database, Column, ColumnType, Schema, Value, row};
//! # use madlib_engine::expr::Predicate;
//! # use madlib_engine::aggregate::CountAggregate;
//! # let db = Database::new(2).unwrap();
//! # db.create_table("patients", Schema::new(vec![
//! #     Column::new("hospital", ColumnType::Text),
//! #     Column::new("age", ColumnType::Double),
//! # ])).unwrap();
//! # db.with_table_mut("patients", |t| t.insert(row!["a", 40.0])).unwrap();
//! let per_hospital = db
//!     .dataset("patients")
//!     .unwrap()
//!     .filter(Predicate::column_gt("age", 18.0))
//!     .group_by(["hospital"])
//!     .aggregate_per_group(&CountAggregate)
//!     .unwrap();
//! ```
//!
//! Nothing is scanned until a *terminal operation* runs: [`Dataset::aggregate`],
//! [`Dataset::aggregate_per_group`], [`Dataset::map_chunks`],
//! [`Dataset::map_rows`], [`Dataset::collect_rows`] or
//! [`Dataset::gather_groups`].  All of them dispatch onto the shared
//! [`crate::scan`] pipeline (segment fan-out, chunk-level predicate masks,
//! compaction), under the [`Executor`] the dataset is bound to — so a
//! dataset built from a row-at-a-time executor reproduces the legacy scan
//! exactly.
//!
//! The grouped terminal runs the segment-parallel, chunk-at-a-time hash
//! grouping introduced in PR 2 (typed [`GroupKey`]s, counting-sort
//! partitioning, per-group gathers through [`RowChunk::gather_rows`]); it is
//! the *only* grouped-scan entry point — the old `Executor` method matrix
//! has been removed.  `grouping_cols` is an arbitrary column *list*, as in
//! the paper:
//! `group_by(["a", "b"])` keys every group by the composite tuple of its
//! columns' values (one [`crate::group::KeyPart`] per column).  When a chunk
//! splinters into more groups than batching pays for, the scan switches to a
//! radix partition pass: each row is bucketed by its group slot, bucket rows
//! are staged across chunks (cheap columnar copies, no [`Row`]
//! materialization) and flushed through [`Aggregate::transition_chunk`] one
//! group at a time — so even the ≥1-group-per-chunk-row regime runs on the
//! vectorized kernels, bit-identical to the row loop.

use crate::aggregate::Aggregate;
use crate::chunk::{RowChunk, Segment};
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::executor::{ExecutionMode, ExecutionStats, Executor};
use crate::expr::Predicate;
use crate::group::GroupKey;
use crate::row::Row;
use crate::scan;
use crate::schema::Schema;
use crate::table::Table;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};

/// Once the mean rows-per-group within a chunk drops below this, the grouped
/// scan stops gathering per-group sub-chunks directly and switches to the
/// radix partition pass: a gather that yields only a couple of rows costs
/// more than the vectorized kernel saves, so high-cardinality chunks stage
/// their rows by group-slot bucket instead and batch each group across many
/// chunks.  (Equality of results does not depend on the threshold —
/// `transition_chunk` overrides are bit-identical to per-row transitions by
/// contract, and staging preserves each group's row order — so this is
/// purely a performance knob.)
const MIN_ROWS_PER_GROUP_FOR_GATHER: usize = 4;

/// How many consecutive group slots share one radix bucket.  Rows are
/// bucketed by `slot / RADIX_SLOTS_PER_BUCKET`, so a flushed bucket touches a
/// contiguous run of aggregate states (cache-friendly) and each group's
/// staged batch stays big enough for the vectorized kernels.
const RADIX_SLOTS_PER_BUCKET: usize = 16;

/// A bucket is flushed through `transition_chunk` once it has staged this
/// many rows — at that point each of its (up to
/// [`RADIX_SLOTS_PER_BUCKET`]) groups averages a batch worth gathering.
const RADIX_FLUSH_ROWS: usize = 256;

/// Upper bound on rows staged across all buckets of one segment scan; when
/// exceeded, the fullest buckets are flushed early.  Bounds staging memory
/// at roughly this many rows' worth of columnar data per worker.
const RADIX_MAX_STAGED_ROWS: usize = 32 * 1024;

/// A lazy, composable description of a scan: a source table plus an optional
/// row predicate and optional grouping columns, bound to the [`Executor`]
/// that will run it.
///
/// The table is held as a [`Cow`], so a dataset either borrows an existing
/// [`Table`] ([`Dataset::from_table`] — zero-copy) or owns a catalog
/// snapshot ([`Database::dataset`]).
#[derive(Debug, Clone)]
pub struct Dataset<'a> {
    table: Cow<'a, Table>,
    filter: Option<Predicate>,
    group_columns: Vec<String>,
    executor: Executor,
    /// Whether [`Dataset::with_executor`] was called: an explicitly bound
    /// executor wins over a training session's default (see
    /// `Session::train`), while the implicit default is freely replaceable.
    executor_bound: bool,
}

impl<'a> Dataset<'a> {
    /// Creates a dataset borrowing `table`, with no filter or grouping,
    /// bound to the default parallel chunk-at-a-time executor.
    pub fn from_table(table: &'a Table) -> Dataset<'a> {
        Dataset {
            table: Cow::Borrowed(table),
            filter: None,
            group_columns: Vec::new(),
            executor: Executor::new(),
            executor_bound: false,
        }
    }

    /// Creates a dataset that owns its table.
    pub fn from_owned_table(table: Table) -> Dataset<'static> {
        Dataset {
            table: Cow::Owned(table),
            filter: None,
            group_columns: Vec::new(),
            executor: Executor::new(),
            executor_bound: false,
        }
    }

    /// Restricts the dataset to rows accepted by `predicate`.  Chaining
    /// filters composes with AND.
    #[must_use]
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.filter = Some(match self.filter.take() {
            None => predicate,
            Some(existing) => existing.and(predicate),
        });
        self
    }

    /// Sets the grouping columns (the paper's `grouping_cols` — an arbitrary
    /// column list).  Grouped terminals evaluate their aggregate once per
    /// distinct *composite* group key: one [`crate::group::KeyPart`] per
    /// column, compared tuple-wise.
    ///
    /// The builder stays infallible; column names are resolved by the
    /// terminal operations, which report unknown or duplicate columns (and
    /// an empty list) as typed [`EngineError`]s.
    #[must_use]
    pub fn group_by<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.group_columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Binds the dataset to a specific executor (mode and parallelism).
    /// An executor bound here sticks: a training session will run this
    /// dataset under it instead of the session's own executor.
    #[must_use]
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self.executor_bound = true;
        self
    }

    /// Binds `executor` only if none was explicitly bound yet — how a
    /// training session applies its default without overriding an explicit
    /// [`Dataset::with_executor`] choice.
    #[must_use]
    pub fn with_default_executor(mut self, executor: Executor) -> Self {
        if !self.executor_bound {
            self.executor = executor;
        }
        self
    }

    /// Whether [`Dataset::with_executor`] explicitly bound an executor.
    pub fn has_bound_executor(&self) -> bool {
        self.executor_bound
    }

    /// A cheap re-borrowing copy: the same filter/grouping over the same
    /// table, but borrowing instead of owning — so callers (e.g. a training
    /// session) can re-bind the executor without cloning table storage.
    pub fn reborrow(&self) -> Dataset<'_> {
        Dataset {
            table: Cow::Borrowed(self.table.as_ref()),
            filter: self.filter.clone(),
            group_columns: self.group_columns.clone(),
            executor: self.executor,
            executor_bound: self.executor_bound,
        }
    }

    /// The source table.
    pub fn table(&self) -> &Table {
        self.table.as_ref()
    }

    /// The source table's schema.
    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// The composed row predicate, if any.
    pub fn filter_predicate(&self) -> Option<&Predicate> {
        self.filter.as_ref()
    }

    /// The grouping columns (empty when ungrouped).
    pub fn group_columns(&self) -> &[String] {
        &self.group_columns
    }

    /// Whether the dataset has grouping columns.
    pub fn is_grouped(&self) -> bool {
        !self.group_columns.is_empty()
    }

    /// The executor this dataset is bound to.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Resolves the grouping columns to schema indices, validating the list:
    /// it must be non-empty, every name must exist in the schema
    /// ([`EngineError::ColumnNotFound`] otherwise) and no column may appear
    /// twice — grouping by a repeated column would silently produce the same
    /// groups under a wider-looking key, so duplicates are rejected as
    /// [`EngineError::InvalidArgument`] instead.
    pub(crate) fn group_column_indices(&self) -> Result<Vec<usize>> {
        if self.group_columns.is_empty() {
            return Err(EngineError::invalid(
                "dataset has no grouping columns; call group_by([...]) first",
            ));
        }
        let schema = self.schema();
        let mut indices = Vec::with_capacity(self.group_columns.len());
        for column in &self.group_columns {
            let idx = schema.index_of(column)?;
            if indices.contains(&idx) {
                return Err(EngineError::invalid(format!(
                    "duplicate grouping column {column:?}; grouping columns must be distinct"
                )));
            }
            indices.push(idx);
        }
        Ok(indices)
    }

    fn require_ungrouped(&self, operation: &str) -> Result<()> {
        if self.is_grouped() {
            return Err(EngineError::invalid(format!(
                "{operation} over a grouped dataset; use aggregate_per_group \
                 (or Session::train_grouped) for grouped evaluation"
            )));
        }
        Ok(())
    }

    /// Runs `aggregate` over the dataset's (filtered) rows and returns the
    /// finalized output.  Terminal operation; requires an ungrouped dataset.
    ///
    /// # Errors
    /// Propagates aggregate and predicate errors; errors on a grouped
    /// dataset.
    pub fn aggregate<A: Aggregate>(&self, aggregate: &A) -> Result<A::Output> {
        Ok(self.aggregate_with_stats(aggregate)?.0)
    }

    /// Like [`Dataset::aggregate`], additionally returning scan statistics.
    ///
    /// # Errors
    /// Propagates aggregate and predicate errors; errors on a grouped
    /// dataset.
    pub fn aggregate_with_stats<A: Aggregate>(
        &self,
        aggregate: &A,
    ) -> Result<(A::Output, ExecutionStats)> {
        self.require_ungrouped("ungrouped aggregation")?;
        self.executor
            .aggregate_with_stats(self.table(), aggregate, self.filter.as_ref())
    }

    /// Runs `aggregate` once per distinct group key, returning the finalized
    /// per-group outputs sorted by key ([`GroupKey`]'s total order, NULL
    /// group first; composite keys compare tuple-wise).  Groups with no
    /// (filter-surviving) rows are absent.
    ///
    /// The grouping is evaluated per segment on the shared scan pipeline and
    /// the per-segment group states merged in segment order, so the
    /// data-parallel structure is identical to the ungrouped path — this is
    /// what lets MADlib train e.g. one regression per group in a single pass
    /// (Section 4.2's grouping constructs).  Under the chunked executor each
    /// chunk is partitioned by key and every group's rows are gathered, in
    /// row order, into a compacted sub-chunk for
    /// [`Aggregate::transition_chunk`]; when a chunk has too many groups for
    /// direct gathers to pay off, its rows are instead staged into
    /// group-slot radix buckets and flushed in batches, so high-cardinality
    /// scans stay on the vectorized kernels (bit-identical results either
    /// way).
    ///
    /// After the merge, the per-group **finalize** stage runs on the same
    /// work-stealing worker pool as the scan (groups are independent):
    /// outputs land in per-group slots and are reassembled in key order, and
    /// each finalize worker reuses one [`crate::FinalizeScratch`] across all
    /// the groups it claims, so results are bit-identical to the serial
    /// finalize loop regardless of scheduling.
    ///
    /// # Errors
    /// Propagates aggregate, predicate and column-lookup errors; errors when
    /// the dataset has no grouping columns or lists one twice.  A finalize
    /// worker panic surfaces as [`crate::EngineError::WorkerPanicked`].
    pub fn aggregate_per_group<A: Aggregate>(
        &self,
        aggregate: &A,
    ) -> Result<Vec<(GroupKey, A::Output)>>
    where
        A::Output: Send,
    {
        let schema = self.schema();
        let group_indices = self.group_column_indices()?;
        let group_indices = group_indices.as_slice();
        let filter = self.filter.as_ref();
        let mode = self.executor.mode();
        // Chunk-range stealing (when the executor opts in) spreads a hot
        // segment's chunks across workers; per segment the ranges' group
        // maps concatenate in range order, so each key's states still merge
        // left-to-right in scan order at the coordinator below.
        let granularity = match mode {
            ExecutionMode::Chunked => self.executor.steal_granularity(),
            ExecutionMode::RowAtATime => scan::StealGranularity::Segment,
        };
        let segment_results = scan::run_per_segment_ranged(
            self.table(),
            self.executor.is_parallel(),
            granularity,
            |range, segment| match mode {
                ExecutionMode::Chunked => run_segment_grouped_chunked(
                    aggregate,
                    range.chunks(segment),
                    schema,
                    group_indices,
                    filter,
                ),
                ExecutionMode::RowAtATime => {
                    run_segment_grouped_rows(aggregate, segment, schema, group_indices, filter)
                }
            },
            |mut left, right| {
                left.extend(right);
                left
            },
        );

        // Fold the per-segment states in segment order: per key, states
        // merge pairwise left-to-right, so results are deterministic and
        // agree with the ungrouped path's merge structure.
        let mut merged: HashMap<GroupKey, A::State> = HashMap::new();
        for res in segment_results {
            for (key, state) in res? {
                let combined = match merged.remove(&key) {
                    None => state,
                    Some(prev) => aggregate.merge(prev, state),
                };
                merged.insert(key, combined);
            }
        }

        let mut entries: Vec<(GroupKey, A::State)> = merged.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        // Parallel finalize: groups are independent, so the sorted states
        // fan out over the work-stealing pool and reassemble in key order.
        let finalized = scan::run_per_item_with_scratch(
            entries,
            self.executor.is_parallel(),
            || aggregate.make_finalize_scratch(),
            |_, (key, state), scratch| {
                aggregate
                    .finalize_with(state, scratch)
                    .map(|output| (key, output))
            },
        );
        let mut out = Vec::with_capacity(finalized.len());
        for slot in finalized {
            // Outer Err = worker panic; inner Err = finalize failure.
            out.push(slot??);
        }
        Ok(out)
    }

    /// Applies `map` once per column-major chunk of filter-surviving rows
    /// (per segment, in parallel) and concatenates the outputs in
    /// segment-then-row order.  Partially selected chunks arrive compacted,
    /// so `map` only ever sees rows that passed the filter.  Terminal
    /// operation; requires an ungrouped dataset.
    ///
    /// # Errors
    /// Propagates predicate errors and errors returned by `map`.
    pub fn map_chunks<T, F>(&self, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&crate::chunk::RowChunk, &Schema) -> Result<Vec<T>> + Sync,
    {
        self.require_ungrouped("chunk projection")?;
        let schema = self.schema();
        let filter = self.filter.as_ref();
        // Always chunk-range stealing: outputs concatenate in range order,
        // which is unconditionally identical to the whole-segment scan, so
        // a hot segment's chunks can spread across workers for free.
        let per_segment = scan::run_per_segment_ranged(
            self.table(),
            self.executor.is_parallel(),
            scan::StealGranularity::ChunkRange,
            |range, segment| {
                let mut out = Vec::new();
                scan::scan_chunks(range.chunks(segment), schema, filter, |batch| {
                    out.extend(map(batch.chunk(), schema)?);
                    Ok(())
                })?;
                Ok(out)
            },
            |mut left, right: Vec<T>| {
                left.extend(right);
                left
            },
        );
        let mut out = Vec::with_capacity(self.table().row_count());
        for res in per_segment {
            out.extend(res?);
        }
        Ok(out)
    }

    /// Applies `map` to every filter-surviving row (per segment, in
    /// parallel), concatenating outputs in segment-then-row order.  The
    /// row-level adapter over [`Dataset::map_chunks`].
    ///
    /// # Errors
    /// Propagates predicate errors and errors returned by `map`.
    pub fn map_rows<T, F>(&self, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Row, &Schema) -> Result<T> + Sync,
    {
        self.map_chunks(|chunk, schema| {
            let mut out = Vec::with_capacity(chunk.len());
            let mut values = Vec::with_capacity(chunk.arity());
            for i in 0..chunk.len() {
                chunk.read_row_into(i, &mut values);
                let row = Row::new(std::mem::take(&mut values));
                out.push(map(&row, schema)?);
                values = row.into_values();
            }
            Ok(out)
        })
    }

    /// Materializes the filter-surviving rows in segment order.  Terminal
    /// operation; requires an ungrouped dataset.  Intended for small results
    /// and tests — large scans should stay on the aggregate/map terminals.
    ///
    /// # Errors
    /// Propagates predicate errors.
    pub fn collect_rows(&self) -> Result<Vec<Row>> {
        self.map_rows(|row, _| Ok(row.clone()))
    }

    /// The first filter-surviving row in segment order, if any.  Serial;
    /// used by drivers that probe the input shape (e.g. the feature width)
    /// before iterating.
    ///
    /// # Errors
    /// Propagates predicate errors.
    pub fn first_row(&self) -> Result<Option<Row>> {
        let schema = self.schema();
        for row in self.table().iter() {
            match &self.filter {
                Some(pred) if !pred.evaluate(&row, schema)? => continue,
                _ => return Ok(Some(row)),
            }
        }
        Ok(None)
    }

    /// Splits the dataset into one table per group, preserving each row's
    /// original segment (and per-segment row order) so that any scan over a
    /// gathered table is bitwise identical to a scan over the source
    /// filtered down to that group.  Groups are returned sorted by key.
    ///
    /// This is the "per-group gather" used to run *iterative* estimators per
    /// group: single-pass aggregates go through
    /// [`Dataset::aggregate_per_group`] instead and never materialize
    /// per-group storage.
    ///
    /// # Errors
    /// Propagates predicate and column-lookup errors; errors when the
    /// dataset has no grouping columns or lists one twice.
    pub fn gather_groups(&self) -> Result<Vec<(GroupKey, Table)>> {
        let schema = self.schema();
        let group_indices = self.group_column_indices()?;
        let group_indices = group_indices.as_slice();
        let source = self.table();
        let filter = self.filter.as_ref();
        // Per segment, in parallel: split the filter-surviving rows by key,
        // preserving row order within each (segment, group).
        let per_segment =
            scan::run_per_segment(source, self.executor.is_parallel(), |_, segment| {
                let mut slots: HashMap<GroupKey, usize> = HashMap::new();
                let mut split: Vec<(GroupKey, Vec<Row>)> = Vec::new();
                scan::scan_segment_rows(segment, schema, filter, |row| {
                    let key = group_key_of_row(row, group_indices);
                    let slot = match slots.get(&key) {
                        Some(&slot) => slot,
                        None => {
                            split.push((key.clone(), Vec::new()));
                            slots.insert(key, split.len() - 1);
                            split.len() - 1
                        }
                    };
                    split[slot].1.push(row.clone());
                    Ok(())
                })?;
                Ok(split)
            });
        // Assemble the per-group tables in segment order, so every row keeps
        // its original segment and per-segment position.
        let mut groups: BTreeMap<GroupKey, Table> = BTreeMap::new();
        for (seg, res) in per_segment.into_iter().enumerate() {
            for (key, rows) in res? {
                if !groups.contains_key(&key) {
                    let table = Table::new(schema.clone(), source.num_segments())?
                        .with_chunk_capacity(source.chunk_capacity())?;
                    groups.insert(key.clone(), table);
                }
                let table = groups.get_mut(&key).expect("group table inserted above");
                for row in rows {
                    table.insert_into_segment(seg, row)?;
                }
            }
        }
        Ok(groups.into_iter().collect())
    }
}

impl Database {
    /// Opens a dataset over a snapshot of the named table (the analogue of
    /// naming a `source_table` in a MADlib call).
    ///
    /// # Errors
    /// Returns [`EngineError::TableNotFound`] for an unknown name.
    pub fn dataset(&self, name: &str) -> Result<Dataset<'static>> {
        Ok(Dataset::from_owned_table(self.table(name)?))
    }
}

/// The (possibly composite) group key of a materialized row.
fn group_key_of_row(row: &Row, group_indices: &[usize]) -> GroupKey {
    match group_indices {
        [idx] => GroupKey::from_value(row.get(*idx)),
        many => GroupKey::from_values(many.iter().map(|&i| row.get(i))),
    }
}

/// One radix bucket of the high-cardinality grouped scan: the staged rows of
/// a contiguous run of [`RADIX_SLOTS_PER_BUCKET`] group slots, appended in
/// scan order (so each group's rows stay in row order), plus each staged
/// row's slot — recorded at staging time so a flush never re-derives keys.
struct StagedBucket {
    rows: RowChunk,
    slots: Vec<u32>,
}

impl StagedBucket {
    fn new(schema: &Schema) -> Self {
        Self {
            rows: RowChunk::new(schema),
            slots: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Flushes one radix bucket: counting-sorts the staged row indices by group
/// slot (stable, so each group's rows keep their scan order), gathers every
/// group's batch through [`RowChunk::gather_rows`] and feeds it to
/// [`Aggregate::transition_chunk`].  Clears the bucket in place afterwards,
/// keeping its grown buffers for the next staging round.
fn flush_bucket<A: Aggregate>(
    aggregate: &A,
    schema: &Schema,
    states: &mut [A::State],
    bucket_id: usize,
    bucket: &mut StagedBucket,
    staged_total: &mut usize,
) -> Result<()> {
    let staged = bucket.len();
    if staged == 0 {
        return Ok(());
    }
    *staged_total -= staged;
    let chunk = &bucket.rows;
    let slots = &bucket.slots;

    let base = (bucket_id * RADIX_SLOTS_PER_BUCKET) as u32;
    // Local counting sort over the bucket's (at most
    // RADIX_SLOTS_PER_BUCKET) slots.
    let mut counts = [0u32; RADIX_SLOTS_PER_BUCKET];
    for &slot in slots {
        counts[(slot - base) as usize] += 1;
    }
    let outcome = if counts.iter().any(|&c| c as usize == staged) {
        // Single-group bucket: the whole staged chunk is one batch.
        let slot = slots[0] as usize;
        aggregate.transition_chunk(&mut states[slot], chunk, schema)
    } else {
        let mut offsets = [0u32; RADIX_SLOTS_PER_BUCKET];
        let mut running = 0u32;
        for (offset, &count) in offsets.iter_mut().zip(&counts) {
            *offset = running;
            running += count;
        }
        let mut scatter = vec![0u32; staged];
        let mut cursors = offsets;
        for (i, &slot) in slots.iter().enumerate() {
            let local = (slot - base) as usize;
            scatter[cursors[local] as usize] = i as u32;
            cursors[local] += 1;
        }
        let mut result = Ok(());
        for (local, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let start = offsets[local] as usize;
            let indices = &scatter[start..start + count as usize];
            let sub = chunk.gather_rows(indices);
            if let Err(err) =
                aggregate.transition_chunk(&mut states[base as usize + local], &sub, schema)
            {
                result = Err(err);
                break;
            }
        }
        result
    };
    bucket.rows.clear();
    bucket.slots.clear();
    outcome
}

fn run_segment_grouped_chunked<A: Aggregate>(
    aggregate: &A,
    chunks: &[std::sync::Arc<RowChunk>],
    schema: &Schema,
    group_indices: &[usize],
    filter: Option<&Predicate>,
) -> Result<Vec<(GroupKey, A::State)>> {
    // Segment-level group directory: each distinct key is hashed into a
    // dense slot exactly once per row, and states live in a flat vector
    // indexed by slot.
    let mut slots: HashMap<GroupKey, u32> = HashMap::new();
    let mut states: Vec<A::State> = Vec::new();
    // Radix staging for high-cardinality chunks: one bucket per contiguous
    // run of RADIX_SLOTS_PER_BUCKET slots, holding rows copied out of their
    // source chunks until the bucket is worth batching.
    let mut buckets: Vec<StagedBucket> = Vec::new();
    let mut staged_total: usize = 0;
    // Per-chunk scratch, reused across chunks: the key columns, the slot of
    // every row, the distinct slots of the current chunk (first-seen order)
    // with their in-chunk row counts, and an epoch-stamped marker per slot
    // (`u32::MAX` = not yet seen this chunk) locating each slot's entry
    // in `chunk_groups`.
    let mut row_slots: Vec<u32> = Vec::new();
    let mut chunk_groups: Vec<(u32, u32)> = Vec::new();
    let mut chunk_group_of_slot: Vec<u32> = Vec::new();
    let mut scatter: Vec<u32> = Vec::new();
    let mut offsets: Vec<u32> = Vec::new();
    // The staging pass keeps the same shape of directory at bucket
    // granularity (cleared inside `stage_chunk_rows`).
    let mut directory = BucketDirectory::default();

    scan::scan_chunks(chunks, schema, filter, |batch| {
        let chunk = batch.chunk();
        let rows = chunk.len();
        let key_columns: Vec<&crate::chunk::ColumnChunk> =
            group_indices.iter().map(|&c| chunk.column(c)).collect();

        // Pass 1: key every row into its segment-level slot and tally
        // this chunk's distinct groups (the per-group selection masks,
        // in compressed slot form).  Group values cluster in practice,
        // so probe the previous row's key in place first — for text and
        // array keys that skips the per-row key allocation entirely.
        row_slots.clear();
        for group in chunk_groups.drain(..) {
            chunk_group_of_slot[group.0 as usize] = u32::MAX;
        }
        let mut previous: Option<(GroupKey, u32)> = None;
        for i in 0..rows {
            let slot = match &previous {
                Some((key, slot)) if key.matches_columns(&key_columns, i) => *slot,
                _ => {
                    let key = GroupKey::from_columns(&key_columns, i);
                    let slot = match slots.get(&key) {
                        Some(&slot) => slot,
                        None => {
                            let slot = states.len() as u32;
                            states.push(aggregate.initial_state());
                            chunk_group_of_slot.push(u32::MAX);
                            slots.insert(key.clone(), slot);
                            slot
                        }
                    };
                    previous = Some((key, slot));
                    slot
                }
            };
            row_slots.push(slot);
            let marker = &mut chunk_group_of_slot[slot as usize];
            if *marker == u32::MAX {
                *marker = chunk_groups.len() as u32;
                chunk_groups.push((slot, 0));
            }
            chunk_groups[*marker as usize].1 += 1;
        }
        // Keep one (possibly empty) bucket per run of slots, so every slot
        // has a bucket to stage into or flush from.
        let wanted = states.len().div_ceil(RADIX_SLOTS_PER_BUCKET);
        buckets.resize_with(wanted.max(buckets.len()), || StagedBucket::new(schema));

        if chunk_groups.len() == 1 {
            // Single-key chunk: the whole chunk is one group's batch.  Any
            // staged rows of this group's bucket must run first to keep the
            // group's row order.
            let slot = chunk_groups[0].0 as usize;
            let b = slot / RADIX_SLOTS_PER_BUCKET;
            flush_bucket(
                aggregate,
                schema,
                &mut states,
                b,
                &mut buckets[b],
                &mut staged_total,
            )?;
            return aggregate.transition_chunk(&mut states[slot], chunk, schema);
        }

        if rows >= chunk_groups.len() * MIN_ROWS_PER_GROUP_FOR_GATHER {
            // Batches are big enough for the vectorized kernels: bucket
            // the row indices by group (counting-sort scatter, one flat
            // reused buffer) and gather each group's rows — in row
            // order — into a compacted sub-chunk.  Buckets holding staged
            // rows of this chunk's groups flush first (order again).
            if staged_total > 0 {
                for &(slot, _) in chunk_groups.iter() {
                    let b = slot as usize / RADIX_SLOTS_PER_BUCKET;
                    flush_bucket(
                        aggregate,
                        schema,
                        &mut states,
                        b,
                        &mut buckets[b],
                        &mut staged_total,
                    )?;
                }
            }
            offsets.clear();
            let mut running = 0u32;
            for &(_, count) in chunk_groups.iter() {
                offsets.push(running);
                running += count;
            }
            scatter.resize(rows, 0);
            let mut cursors = offsets.clone();
            for (i, &slot) in row_slots.iter().enumerate() {
                let g = chunk_group_of_slot[slot as usize] as usize;
                scatter[cursors[g] as usize] = i as u32;
                cursors[g] += 1;
            }
            for (g, &(slot, count)) in chunk_groups.iter().enumerate() {
                let start = offsets[g] as usize;
                let indices = &scatter[start..start + count as usize];
                let sub = chunk.gather_rows(indices);
                aggregate.transition_chunk(&mut states[slot as usize], &sub, schema)?;
            }
        } else {
            // High-cardinality chunk — the radix partition pass.  Counting-
            // sort the row indices into slot-range buckets and append each
            // bucket's rows (columnar copies, no Row materialization) to its
            // staging chunk; groups batch up across chunks and flush through
            // transition_chunk once their bucket is full.  Per-group row
            // order is preserved: a group's rows route through exactly one
            // bucket, in scan order.
            scatter.resize(rows, 0);
            stage_chunk_rows(
                chunk,
                &row_slots,
                &mut buckets,
                &mut staged_total,
                &mut scatter,
                &mut offsets,
                &mut directory,
            )?;
            // Flush buckets that reached a batch worth of rows — only the
            // buckets staged into by *this* chunk (still listed in
            // `chunk_buckets`) can have newly crossed the threshold, so the
            // check is O(buckets touched), not O(all buckets).
            for &(b, _) in directory.chunk_buckets.iter() {
                let bucket = &mut buckets[b as usize];
                if bucket.len() >= RADIX_FLUSH_ROWS {
                    flush_bucket(
                        aggregate,
                        schema,
                        &mut states,
                        b as usize,
                        bucket,
                        &mut staged_total,
                    )?;
                }
            }
            // Bound total staging memory by draining the fullest buckets
            // (global scan, but only reached when the cap is exceeded).
            while staged_total > RADIX_MAX_STAGED_ROWS {
                let fullest = (0..buckets.len())
                    .max_by_key(|&b| buckets[b].len())
                    .expect("buckets exist while rows are staged");
                flush_bucket(
                    aggregate,
                    schema,
                    &mut states,
                    fullest,
                    &mut buckets[fullest],
                    &mut staged_total,
                )?;
            }
        }
        Ok(())
    })?;

    // End of segment: drain every bucket.  Cross-group order is free (each
    // group's state is independent); per-group order was preserved by the
    // staging discipline.
    for (b, bucket) in buckets.iter_mut().enumerate() {
        flush_bucket(aggregate, schema, &mut states, b, bucket, &mut staged_total)?;
    }
    debug_assert_eq!(staged_total, 0);

    Ok(collect_slotted_states(slots, states))
}

/// Chunk-level radix-bucket directory, reused across staged chunks: the
/// distinct buckets of the current chunk in first-seen order with their row
/// counts, plus an epoch-stamped entry marker per bucket id (`u32::MAX` =
/// not seen this chunk) — the bucket-granularity twin of the slot directory
/// in the grouped pass-1.
#[derive(Default)]
struct BucketDirectory {
    chunk_buckets: Vec<(u32, u32)>,
    chunk_entry_of_bucket: Vec<u32>,
}

/// Stages one high-cardinality chunk's rows into their slot-range buckets:
/// counting-sorts the row indices by bucket (stable, preserving row order)
/// and appends each bucket's run to its staging chunk in one
/// [`RowChunk::append_rows`] call.
///
/// `chunk_buckets` and `chunk_entry_of_bucket` are caller-owned scratch —
/// the same epoch-stamped dense directory the slot pass uses for groups
/// (`u32::MAX` = bucket not yet seen this chunk), so keying a row to its
/// chunk-bucket entry is O(1) no matter how many distinct buckets the chunk
/// touches or in what order keys arrive.  The previous staged chunk's
/// entries are cleared on entry.
fn stage_chunk_rows(
    chunk: &RowChunk,
    row_slots: &[u32],
    buckets: &mut [StagedBucket],
    staged_total: &mut usize,
    scatter: &mut [u32],
    offsets: &mut Vec<u32>,
    directory: &mut BucketDirectory,
) -> Result<()> {
    let BucketDirectory {
        chunk_buckets,
        chunk_entry_of_bucket,
    } = directory;
    // Reset the directory: un-mark the previous staged chunk's buckets and
    // cover any buckets created since.
    for entry in chunk_buckets.drain(..) {
        chunk_entry_of_bucket[entry.0 as usize] = u32::MAX;
    }
    chunk_entry_of_bucket.resize(buckets.len(), u32::MAX);
    // Distinct buckets of this chunk in first-seen order, with counts.
    for &slot in row_slots {
        let b = slot / RADIX_SLOTS_PER_BUCKET as u32;
        let marker = &mut chunk_entry_of_bucket[b as usize];
        if *marker == u32::MAX {
            *marker = chunk_buckets.len() as u32;
            chunk_buckets.push((b, 0));
        }
        chunk_buckets[*marker as usize].1 += 1;
    }
    // Counting-sort scatter with one cursor array: after the scatter pass
    // each cursor sits at the *end* of its bucket's range, and the start is
    // recovered as `end - count` — no second offsets buffer needed.
    offsets.clear();
    let mut running = 0u32;
    for &(_, count) in chunk_buckets.iter() {
        offsets.push(running);
        running += count;
    }
    for (i, &slot) in row_slots.iter().enumerate() {
        let b = slot / RADIX_SLOTS_PER_BUCKET as u32;
        let entry = chunk_entry_of_bucket[b as usize] as usize;
        scatter[offsets[entry] as usize] = i as u32;
        offsets[entry] += 1;
    }
    for (entry, &(b, count)) in chunk_buckets.iter().enumerate() {
        let end = offsets[entry] as usize;
        let indices = &scatter[end - count as usize..end];
        let bucket = &mut buckets[b as usize];
        bucket.rows.append_rows(chunk, indices)?;
        bucket
            .slots
            .extend(indices.iter().map(|&i| row_slots[i as usize]));
        *staged_total += count as usize;
    }
    Ok(())
}

fn run_segment_grouped_rows<A: Aggregate>(
    aggregate: &A,
    segment: &Segment,
    schema: &Schema,
    group_indices: &[usize],
    filter: Option<&Predicate>,
) -> Result<Vec<(GroupKey, A::State)>> {
    let mut slots: HashMap<GroupKey, u32> = HashMap::new();
    let mut states: Vec<A::State> = Vec::new();
    scan::scan_segment_rows(segment, schema, filter, |row| {
        let key = group_key_of_row(row, group_indices);
        let slot = match slots.get(&key) {
            Some(&slot) => slot,
            None => {
                let slot = states.len() as u32;
                states.push(aggregate.initial_state());
                slots.insert(key, slot);
                slot
            }
        };
        aggregate.transition(&mut states[slot as usize], row, schema)
    })?;
    Ok(collect_slotted_states(slots, states))
}

/// Zips a key→slot directory back together with its slot-indexed states.
fn collect_slotted_states<S>(slots: HashMap<GroupKey, u32>, states: Vec<S>) -> Vec<(GroupKey, S)> {
    let mut keys: Vec<(GroupKey, u32)> = slots.into_iter().collect();
    keys.sort_unstable_by_key(|(_, slot)| *slot);
    keys.into_iter().map(|(key, _)| key).zip(states).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{CountAggregate, SumAggregate};
    use crate::row;
    use crate::schema::{Column, ColumnType};
    use crate::value::Value;

    fn make_table(segments: usize, rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for i in 0..rows {
            let grp = if i % 2 == 0 { "even" } else { "odd" };
            t.insert(row![grp, i as f64, vec![i as f64, 1.0]]).unwrap();
        }
        t
    }

    #[test]
    fn builder_composes_filters_and_grouping() {
        let t = make_table(2, 10);
        let ds = Dataset::from_table(&t)
            .filter(Predicate::column_gt("y", 1.5))
            .filter(Predicate::column_lt("y", 8.5))
            .group_by(["grp"]);
        assert!(ds.is_grouped());
        assert_eq!(ds.group_columns(), ["grp".to_owned()]);
        // Both filters apply (AND): y in {2..8} → 7 rows.
        let groups = ds.aggregate_per_group(&CountAggregate).unwrap();
        let total: u64 = groups.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn ungrouped_terminals_reject_grouped_datasets() {
        let t = make_table(2, 4);
        let ds = Dataset::from_table(&t).group_by(["grp"]);
        assert!(ds.aggregate(&CountAggregate).is_err());
        assert!(ds.map_rows(|_, _| Ok(())).is_err());
        assert!(ds.collect_rows().is_err());
    }

    #[test]
    fn grouped_terminals_validate_the_column_list() {
        use crate::error::EngineError;

        let t = make_table(2, 4);
        // No grouping columns at all.
        assert!(matches!(
            Dataset::from_table(&t).aggregate_per_group(&CountAggregate),
            Err(EngineError::InvalidArgument { .. })
        ));
        assert!(Dataset::from_table(&t).gather_groups().is_err());
        // Unknown names surface as typed ColumnNotFound at terminal time.
        assert!(matches!(
            Dataset::from_table(&t)
                .group_by(["nope"])
                .aggregate_per_group(&CountAggregate),
            Err(EngineError::ColumnNotFound { name }) if name == "nope"
        ));
        assert!(matches!(
            Dataset::from_table(&t)
                .group_by(["grp", "nope"])
                .gather_groups(),
            Err(EngineError::ColumnNotFound { name }) if name == "nope"
        ));
        // Duplicate columns are rejected instead of silently mis-grouping.
        assert!(matches!(
            Dataset::from_table(&t)
                .group_by(["grp", "grp"])
                .aggregate_per_group(&CountAggregate),
            Err(EngineError::InvalidArgument { message }) if message.contains("duplicate")
        ));
        assert!(Dataset::from_table(&t)
            .group_by(["grp", "grp"])
            .gather_groups()
            .is_err());
        // A valid multi-column list works.
        assert!(Dataset::from_table(&t)
            .group_by(["grp", "y"])
            .aggregate_per_group(&CountAggregate)
            .is_ok());
    }

    #[test]
    fn composite_grouping_matches_filtered_runs() {
        let schema = Schema::new(vec![
            Column::new("a", ColumnType::Text),
            Column::new("b", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ]);
        let mut t = Table::new(schema, 3)
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        for i in 0..53 {
            let a = ["x", "y"][i % 2];
            let b = (i % 3) as i64;
            t.insert(row![a, b, i as f64]).unwrap();
        }
        t.insert(Row::new(vec![
            Value::Null,
            Value::Int(0),
            Value::Double(100.0),
        ]))
        .unwrap();

        for executor in [Executor::new(), Executor::row_at_a_time()] {
            let groups = Dataset::from_table(&t)
                .with_executor(executor)
                .group_by(["a", "b"])
                .aggregate_per_group(&SumAggregate::new("v"))
                .unwrap();
            // 2 × 3 live tuples plus the (NULL, 0) group.
            assert_eq!(groups.len(), 7);
            for (key, sum) in &groups {
                assert_eq!(key.arity(), 2);
                let filtered = Dataset::from_table(&t)
                    .with_executor(executor)
                    .filter(Predicate::columns_are_key(["a", "b"], key.clone()))
                    .aggregate(&SumAggregate::new("v"))
                    .unwrap();
                assert_eq!(sum.to_bits(), filtered.to_bits());
            }
        }
    }

    #[test]
    fn grouped_aggregation_matches_filtered_runs() {
        let base = make_table(1, 97);
        let mut t = Table::new(base.schema().clone(), 4)
            .unwrap()
            .with_chunk_capacity(16)
            .unwrap();
        t.insert_all(base.iter()).unwrap();

        for executor in [Executor::new(), Executor::row_at_a_time()] {
            let groups = Dataset::from_table(&t)
                .with_executor(executor)
                .group_by(["grp"])
                .aggregate_per_group(&SumAggregate::new("y"))
                .unwrap();
            assert_eq!(groups.len(), 2);
            for (key, sum) in &groups {
                let filtered = Dataset::from_table(&t)
                    .with_executor(executor)
                    .filter(Predicate::column_is_key("grp", key.clone()))
                    .aggregate(&SumAggregate::new("y"))
                    .unwrap();
                assert_eq!(sum.to_bits(), filtered.to_bits());
            }
        }
    }

    #[test]
    fn grouped_keys_are_typed_not_stringly() {
        let schema = Schema::new(vec![
            Column::new("k", ColumnType::Double),
            Column::new("v", ColumnType::Double),
        ]);
        let mut t = Table::new(schema, 2).unwrap();
        // -0.0 and 0.0 must be distinct groups; NaNs must form one group.
        t.insert(row![0.0, 1.0]).unwrap();
        t.insert(row![-0.0, 2.0]).unwrap();
        t.insert(row![f64::NAN, 4.0]).unwrap();
        t.insert(row![f64::NAN, 8.0]).unwrap();
        t.insert(Row::new(vec![Value::Null, Value::Double(16.0)]))
            .unwrap();
        let groups = Dataset::from_table(&t)
            .group_by(["k"])
            .aggregate_per_group(&SumAggregate::new("v"))
            .unwrap();
        assert_eq!(groups.len(), 4);
        // Total order: NULL first, then -0.0 < 0.0 < NaN.
        assert_eq!(groups[0].0, GroupKey::from_value(&Value::Null));
        assert_eq!(groups[0].1, 16.0);
        match groups[1].0.clone().into_value() {
            Value::Double(v) => assert_eq!(v.to_bits(), (-0.0f64).to_bits()),
            other => panic!("unexpected key {other:?}"),
        }
        assert_eq!(groups[1].1, 2.0);
        assert_eq!(groups[2].0.clone().into_value(), Value::Double(0.0));
        assert_eq!(groups[2].1, 1.0);
        match groups[3].0.clone().into_value() {
            Value::Double(v) => assert!(v.is_nan()),
            other => panic!("unexpected key {other:?}"),
        }
        assert_eq!(groups[3].1, 12.0);

        // The ColumnIs predicate selects exactly one group, NaN included.
        for (key, sum) in &groups {
            let filtered = Dataset::from_table(&t)
                .filter(Predicate::column_is_key("k", key.clone()))
                .aggregate(&SumAggregate::new("v"))
                .unwrap();
            assert_eq!(filtered.to_bits(), sum.to_bits());
        }
    }

    #[test]
    fn radix_flush_thresholds_preserve_equivalence() {
        // Two shapes that cross the staging thresholds mid-scan (the other
        // grouped tests stay below them and only flush at end of segment):
        // - 20 000 rows cycling 2 048 keys in 1 024-row chunks: every chunk
        //   is high-cardinality, each bucket gains 16 rows per chunk and
        //   crosses RADIX_FLUSH_ROWS after 16 chunks.
        // - 34 000 rows with 34 000 distinct keys: no bucket ever reaches
        //   the per-bucket threshold, so total staging crosses
        //   RADIX_MAX_STAGED_ROWS and the fullest-bucket drain kicks in.
        for (rows, groups) in [(20_000usize, 2_048usize), (34_000, 34_000)] {
            let schema = Schema::new(vec![
                Column::new("grp", ColumnType::Int),
                Column::new("y", ColumnType::Double),
            ]);
            let mut t = Table::new(schema, 1).unwrap();
            for i in 0..rows {
                t.insert(row![(i % groups) as i64, (i % 97) as f64 - 48.0])
                    .unwrap();
            }
            let run = |executor: Executor| {
                Dataset::from_table(&t)
                    .with_executor(executor)
                    .group_by(["grp"])
                    .aggregate_per_group(&SumAggregate::new("y"))
                    .unwrap()
            };
            let chunked = run(Executor::new());
            let by_rows = run(Executor::row_at_a_time());
            assert_eq!(chunked.len(), groups);
            assert_eq!(chunked.len(), by_rows.len());
            for ((ka, va), (kb, vb)) in chunked.iter().zip(&by_rows) {
                assert_eq!(ka, kb);
                assert_eq!(va.to_bits(), vb.to_bits(), "key {ka:?}");
            }
        }
    }

    #[test]
    fn map_and_collect_respect_filters() {
        let t = make_table(3, 12);
        let ds = Dataset::from_table(&t).filter(Predicate::column_gt("y", 5.5));
        let rows = ds.collect_rows().unwrap();
        assert_eq!(rows.len(), 6);
        let ys: Vec<f64> = ds
            .map_rows(|row, schema| row.get_named(schema, "y")?.as_double())
            .unwrap();
        assert!(ys.iter().all(|&y| y > 5.5));
        let by_chunks: Vec<f64> = ds
            .map_chunks(|chunk, schema| {
                let idx = schema.index_of("y")?;
                Ok(chunk.doubles(idx)?.values.to_vec())
            })
            .unwrap();
        assert_eq!(ys, by_chunks);

        let first = ds.first_row().unwrap().unwrap();
        assert_eq!(first.get(1).as_double().unwrap(), ys[0]);
        let none = Dataset::from_table(&t)
            .filter(Predicate::column_gt("y", 1e9))
            .first_row()
            .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn gather_groups_preserves_segment_placement() {
        let base = make_table(1, 41);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        t.insert_all(base.iter()).unwrap();

        let gathered = Dataset::from_table(&t)
            .group_by(["grp"])
            .gather_groups()
            .unwrap();
        assert_eq!(gathered.len(), 2);
        let mut total = 0;
        for (key, group_table) in &gathered {
            assert_eq!(group_table.num_segments(), t.num_segments());
            assert_eq!(group_table.chunk_capacity(), t.chunk_capacity());
            total += group_table.row_count();
            // Per segment, the gathered rows are the source segment's rows
            // of this group, in order.
            for seg in 0..t.num_segments() {
                let expected: Vec<Row> = t
                    .segment(seg)
                    .iter()
                    .filter(|r| GroupKey::from_value(r.get(0)) == *key)
                    .collect();
                let got: Vec<Row> = group_table.segment(seg).iter().collect();
                assert_eq!(got, expected);
            }
        }
        assert_eq!(total, t.row_count());
    }

    #[test]
    fn database_dataset_snapshots_the_catalog_table() {
        let db = Database::new(2).unwrap();
        let schema = Schema::new(vec![Column::new("v", ColumnType::Double)]);
        db.create_table("data", schema).unwrap();
        db.with_table_mut("data", |t| {
            for i in 0..6 {
                t.insert(row![i as f64])?;
            }
            Ok(())
        })
        .unwrap();
        let ds = db.dataset("data").unwrap();
        assert_eq!(ds.aggregate(&CountAggregate).unwrap(), 6);
        assert!(db.dataset("missing").is_err());
    }
}
