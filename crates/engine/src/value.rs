//! Runtime values.
//!
//! The engine stores rows as vectors of [`Value`].  The variants mirror the
//! PostgreSQL types MADlib methods actually use: `double precision`,
//! `bigint`, `boolean`, `text`, `double precision[]` (the workhorse type for
//! feature vectors, as in the paper's Listing 1), `text[]` (token sequences
//! for the text-analytics module), and NULL.

use crate::error::{EngineError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single SQL-style runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// `boolean`.
    Bool(bool),
    /// `bigint`.
    Int(i64),
    /// `double precision`.
    Double(f64),
    /// `text`.
    Text(String),
    /// `double precision[]` — the representation used for feature vectors.
    DoubleArray(Vec<f64>),
    /// `text[]` — token sequences for text analytics.
    TextArray(Vec<String>),
    /// `bigint[]` — label/index sequences.
    IntArray(Vec<i64>),
}

impl Value {
    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as `f64`, coercing integers; errors on other types.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Double(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(EngineError::TypeMismatch {
                expected: "double precision",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Interpret as `i64`; errors on non-integer types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(EngineError::TypeMismatch {
                expected: "bigint",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Interpret as `bool`; errors on other types.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(EngineError::TypeMismatch {
                expected: "boolean",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Interpret as text; errors on other types.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "text",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Interpret as `double precision[]`; errors on other types.
    pub fn as_double_array(&self) -> Result<&[f64]> {
        match self {
            Value::DoubleArray(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "double precision[]",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Interpret as `text[]`; errors on other types.
    pub fn as_text_array(&self) -> Result<&[String]> {
        match self {
            Value::TextArray(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "text[]",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Interpret as `bigint[]`; errors on other types.
    pub fn as_int_array(&self) -> Result<&[i64]> {
        match self {
            Value::IntArray(v) => Ok(v),
            other => Err(EngineError::TypeMismatch {
                expected: "bigint[]",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// The SQL-ish name of this value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "bigint",
            Value::Double(_) => "double precision",
            Value::Text(_) => "text",
            Value::DoubleArray(_) => "double precision[]",
            Value::TextArray(_) => "text[]",
            Value::IntArray(_) => "bigint[]",
        }
    }

    /// A stable 64-bit hash of the value, used for hash partitioning and
    /// group-by keys.  Floating-point values hash by bit pattern.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over a type tag plus the value bytes; deterministic across
        // runs (unlike `DefaultHasher`, which is randomly seeded).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        fn feed(hash: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *hash ^= b as u64;
                *hash = hash.wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        match self {
            Value::Null => feed(&mut h, &[0]),
            Value::Bool(b) => feed(&mut h, &[1, *b as u8]),
            Value::Int(v) => {
                feed(&mut h, &[2]);
                feed(&mut h, &v.to_le_bytes());
            }
            Value::Double(v) => {
                feed(&mut h, &[3]);
                feed(&mut h, &v.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                feed(&mut h, &[4]);
                feed(&mut h, s.as_bytes());
            }
            Value::DoubleArray(a) => {
                feed(&mut h, &[5]);
                for v in a {
                    feed(&mut h, &v.to_bits().to_le_bytes());
                }
            }
            Value::TextArray(a) => {
                feed(&mut h, &[6]);
                for s in a {
                    feed(&mut h, s.as_bytes());
                    feed(&mut h, &[0xff]);
                }
            }
            Value::IntArray(a) => {
                feed(&mut h, &[7]);
                for v in a {
                    feed(&mut h, &v.to_le_bytes());
                }
            }
        }
        h
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::DoubleArray(a) => {
                write!(f, "{{")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::TextArray(a) => write!(f, "{{{}}}", a.join(",")),
            Value::IntArray(a) => {
                write!(f, "{{")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::DoubleArray(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Double(2.5).as_double().unwrap(), 2.5);
        assert_eq!(Value::Int(3).as_double().unwrap(), 3.0);
        assert_eq!(Value::Bool(true).as_double().unwrap(), 1.0);
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert!(!Value::Bool(false).as_bool().unwrap());
        assert_eq!(Value::Text("hi".into()).as_text().unwrap(), "hi");
        assert_eq!(
            Value::DoubleArray(vec![1.0, 2.0])
                .as_double_array()
                .unwrap(),
            &[1.0, 2.0]
        );
        assert_eq!(
            Value::TextArray(vec!["a".into()]).as_text_array().unwrap(),
            &["a".to_owned()]
        );
        assert_eq!(Value::IntArray(vec![1, 2]).as_int_array().unwrap(), &[1, 2]);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(Value::Text("x".into()).as_double().is_err());
        assert!(Value::Double(1.0).as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Null.as_text().is_err());
        assert!(Value::Double(1.0).as_double_array().is_err());
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(1.5), Value::Double(1.5));
        assert_eq!(Value::from(2i64), Value::Int(2));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("abc"), Value::Text("abc".into()));
        assert_eq!(Value::from(vec![1.0]), Value::DoubleArray(vec![1.0]));
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        let a = Value::Text("alpha".into());
        assert_eq!(a.stable_hash(), Value::Text("alpha".into()).stable_hash());
        assert_ne!(a.stable_hash(), Value::Text("beta".into()).stable_hash());
        assert_ne!(
            Value::Int(1).stable_hash(),
            Value::Double(1.0).stable_hash()
        );
        assert_ne!(Value::Null.stable_hash(), Value::Int(0).stable_hash());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::DoubleArray(vec![1.0, 2.0]).to_string(), "{1,2}");
        assert_eq!(
            Value::TextArray(vec!["a".into(), "b".into()]).to_string(),
            "{a,b}"
        );
        assert_eq!(Value::IntArray(vec![3, 4]).to_string(), "{3,4}");
    }
}
