//! Engine error types.

use std::fmt;

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors produced by the engine substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A referenced table does not exist in the catalog.
    TableNotFound {
        /// Name of the missing table.
        name: String,
    },
    /// A table with this name already exists.
    TableAlreadyExists {
        /// Name of the conflicting table.
        name: String,
    },
    /// A referenced column does not exist in the schema.
    ColumnNotFound {
        /// Name of the missing column.
        name: String,
    },
    /// A value had an unexpected type for the target column or operation.
    TypeMismatch {
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// A row's arity does not match the table schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values in the row.
        found: usize,
    },
    /// The requested number of segments is invalid (must be ≥ 1).
    InvalidSegmentCount {
        /// The requested count.
        requested: usize,
    },
    /// An aggregate or iteration reported a domain-specific failure.
    AggregateError {
        /// Description of the failure.
        message: String,
    },
    /// An iterative driver did not converge within its iteration budget.
    DidNotConverge {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Invalid argument supplied to an engine API.
    InvalidArgument {
        /// Description of the problem.
        message: String,
    },
    /// A segment worker thread panicked.  The scan fan-out catches the panic
    /// and surfaces it as an error instead of aborting the coordinator.
    WorkerPanicked {
        /// The panic payload's message, when one was available.
        message: String,
    },
    /// A referenced model does not exist in the model catalog — either no
    /// entry under the name at all, or (for grouped registries) no model for
    /// the requested group key.
    ModelNotFound {
        /// Name of the missing model (catalog entry).
        name: String,
        /// The group key that had no model, rendered for display; `None`
        /// when the name itself was missing.
        group: Option<String>,
    },
    /// A durable-storage operation failed: an I/O error on the WAL, snapshot
    /// or manifest files, or on-disk corruption detected during recovery.
    Storage {
        /// Description of the failure (operation context plus the underlying
        /// I/O or corruption detail).
        message: String,
    },
    /// Rows were appended and **committed**, but one or more materialized
    /// views registered on the table failed to absorb them.  The insert is
    /// durable and must not be retried (a retry would double-append); the
    /// failed views have been marked for rebuild and will re-absorb from
    /// scratch on their next refresh.
    ViewAbsorbFailed {
        /// The table the rows were appended to.
        table: String,
        /// `(view name, error message)` for every view whose absorb failed,
        /// sorted by view name.
        failures: Vec<(String, String)>,
    },
}

impl EngineError {
    /// Helper for constructing [`EngineError::AggregateError`] from anything
    /// displayable.
    pub fn aggregate<E: fmt::Display>(err: E) -> Self {
        EngineError::AggregateError {
            message: err.to_string(),
        }
    }

    /// Helper for constructing [`EngineError::InvalidArgument`].
    pub fn invalid<E: fmt::Display>(err: E) -> Self {
        EngineError::InvalidArgument {
            message: err.to_string(),
        }
    }

    /// Helper for constructing [`EngineError::Storage`] with operation
    /// context prepended to the underlying failure.
    pub fn storage<E: fmt::Display>(context: &str, err: E) -> Self {
        EngineError::Storage {
            message: format!("{context}: {err}"),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TableNotFound { name } => write!(f, "table not found: {name}"),
            EngineError::TableAlreadyExists { name } => {
                write!(f, "table already exists: {name}")
            }
            EngineError::ColumnNotFound { name } => write!(f, "column not found: {name}"),
            EngineError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            EngineError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, row has {found}"
                )
            }
            EngineError::InvalidSegmentCount { requested } => {
                write!(f, "invalid segment count: {requested}")
            }
            EngineError::AggregateError { message } => write!(f, "aggregate error: {message}"),
            EngineError::DidNotConverge { iterations } => {
                write!(f, "driver did not converge after {iterations} iterations")
            }
            EngineError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            EngineError::WorkerPanicked { message } => {
                write!(f, "segment worker panicked: {message}")
            }
            EngineError::ModelNotFound { name, group } => match group {
                Some(group) => write!(f, "model not found: {name} has no model for group {group}"),
                None => write!(f, "model not found: {name}"),
            },
            EngineError::Storage { message } => write!(f, "storage error: {message}"),
            EngineError::ViewAbsorbFailed { table, failures } => {
                write!(
                    f,
                    "rows appended to {table} committed, but {} view(s) failed to absorb them:",
                    failures.len()
                )?;
                for (view, err) in failures {
                    write!(f, " {view}: {err};")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_details() {
        assert!(EngineError::TableNotFound {
            name: "points".into()
        }
        .to_string()
        .contains("points"));
        assert!(EngineError::ArityMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains('3'));
        assert!(EngineError::aggregate("bad state")
            .to_string()
            .contains("bad state"));
        assert!(EngineError::invalid("k must be > 0")
            .to_string()
            .contains("k must be"));
    }
}
