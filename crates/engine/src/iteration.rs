//! Driver-function iteration harness.
//!
//! Many MADlib methods are iterative (Section 3.1.2): logistic regression
//! via iteratively reweighted least squares, k-means, gradient descent, and
//! the MCMC methods of Section 5.2.  The paper's solution is a *driver UDF*
//! that controls the iteration from a scripting language while all heavy
//! lifting stays inside the database engine; inter-iteration state is staged
//! in a temporary table keyed by iteration number (Figure 3).
//!
//! [`IterationController`] reproduces that control flow:
//!
//! 1. create a temp state table (`iteration`, `state`);
//! 2. repeatedly run one data-parallel step (a UDA over the source table,
//!    parameterized by the previous state), appending the new state;
//! 3. test convergence on the (small) states only;
//! 4. return the last state and drop the temp table.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::row::Row;
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;

/// Outcome of a completed iterative driver run.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// Number of iterations executed (at least 1 unless `max_iterations` is 0).
    pub iterations: usize,
    /// Whether the convergence test was satisfied (as opposed to stopping at
    /// the iteration cap).
    pub converged: bool,
    /// The final inter-iteration state.
    pub final_state: Vec<f64>,
    /// The full state history, one entry per completed iteration.
    pub history: Vec<Vec<f64>>,
}

/// Configuration for an iterative driver.
#[derive(Debug, Clone)]
pub struct IterationConfig {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance, interpreted by the convergence test.
    pub tolerance: f64,
    /// When true, reaching `max_iterations` without converging is an error
    /// ([`EngineError::DidNotConverge`]); when false the last state is
    /// returned with `converged == false`.
    pub fail_on_max_iterations: bool,
    /// Name of the temp table used to stage inter-iteration state.
    pub state_table_name: String,
}

impl Default for IterationConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-6,
            fail_on_max_iterations: false,
            state_table_name: "iterative_algorithm".to_owned(),
        }
    }
}

/// Drives a multi-pass algorithm in the paper's driver-UDF style.
#[derive(Debug)]
pub struct IterationController {
    db: Database,
    config: IterationConfig,
}

impl IterationController {
    /// Creates a controller that stages state in `db`.
    pub fn new(db: Database, config: IterationConfig) -> Self {
        Self { db, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &IterationConfig {
        &self.config
    }

    /// Runs the iteration.
    ///
    /// * `initial_state` — the iteration-0 inter-iteration state (e.g. the
    ///   zero coefficient vector for logistic regression, or the seeded
    ///   centroids for k-means, flattened to `Vec<f64>`).
    /// * `step` — executes one data-parallel pass given the previous state
    ///   and returns the next state.  This is where the UDA over the source
    ///   table runs; the controller itself never touches the large data.
    /// * `converged` — given (previous, next, tolerance), decides whether to
    ///   stop.  Typical implementations compare coefficient movement or the
    ///   number of reassigned points.
    ///
    /// # Errors
    /// Propagates step errors; returns [`EngineError::DidNotConverge`] when
    /// configured to fail at the iteration cap.
    pub fn run<S, C>(
        &self,
        initial_state: Vec<f64>,
        step: S,
        converged: C,
    ) -> Result<IterationOutcome>
    where
        S: FnMut(&[f64], usize) -> Result<Vec<f64>>,
        C: FnMut(&[f64], &[f64], f64) -> bool,
    {
        // CREATE TEMP TABLE iterative_algorithm AS SELECT 0 AS iteration, ...
        // The probe-for-a-free-name and the create happen atomically so
        // concurrent drivers sharing a base name (nested cross-validation,
        // parallel per-group fits) always get distinct state tables.
        let state_schema = Schema::new(vec![
            Column::new("iteration", ColumnType::Int),
            Column::new("state", ColumnType::DoubleArray),
        ]);
        let table_name = self
            .db
            .create_unique_temp_table(&self.config.state_table_name, state_schema)?;

        // Run the loop in a helper so the temp state table is dropped on
        // *every* exit path — a step that fails mid-iteration must not leak
        // its table into the catalog (it would otherwise survive until some
        // unrelated `drop_temp_tables` call).
        let outcome = self.run_loop(&table_name, initial_state, step, converged);
        let dropped = self.db.drop_table(&table_name);
        let outcome = outcome?;
        dropped?;

        if !outcome.converged && self.config.fail_on_max_iterations {
            return Err(EngineError::DidNotConverge {
                iterations: outcome.iterations,
            });
        }
        Ok(outcome)
    }

    /// The iteration body of [`IterationController::run`]: stage the initial
    /// state, run steps, test convergence.
    fn run_loop<S, C>(
        &self,
        table_name: &str,
        initial_state: Vec<f64>,
        mut step: S,
        mut converged: C,
    ) -> Result<IterationOutcome>
    where
        S: FnMut(&[f64], usize) -> Result<Vec<f64>>,
        C: FnMut(&[f64], &[f64], f64) -> bool,
    {
        self.db.with_table_mut(table_name, |t| {
            t.insert(Row::new(vec![
                Value::Int(0),
                Value::DoubleArray(initial_state.clone()),
            ]))
        })?;

        let mut previous = initial_state;
        let mut history = Vec::new();
        let mut iterations = 0;
        let mut did_converge = false;

        while iterations < self.config.max_iterations {
            let current_iteration = iterations + 1;
            let next = step(&previous, current_iteration)?;
            // INSERT INTO iterative_algorithm SELECT iteration + 1, <UDA>.
            self.db.with_table_mut(table_name, |t| {
                t.insert(Row::new(vec![
                    Value::Int(current_iteration as i64),
                    Value::DoubleArray(next.clone()),
                ]))
            })?;
            history.push(next.clone());
            iterations = current_iteration;
            if converged(&previous, &next, self.config.tolerance) {
                previous = next;
                did_converge = true;
                break;
            }
            previous = next;
        }
        Ok(IterationOutcome {
            iterations,
            converged: did_converge,
            final_state: previous,
            history,
        })
    }
}

/// Standard convergence test: relative L2 movement of the state vector.
///
/// Returns true when `‖next − previous‖ ≤ tolerance · (1 + ‖previous‖)`.
pub fn l2_relative_convergence(previous: &[f64], next: &[f64], tolerance: f64) -> bool {
    if previous.len() != next.len() {
        return false;
    }
    let mut diff = 0.0;
    let mut base = 0.0;
    for (p, n) in previous.iter().zip(next) {
        diff += (p - n) * (p - n);
        base += p * p;
    }
    diff.sqrt() <= tolerance * (1.0 + base.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn database() -> Database {
        Database::new(2).unwrap()
    }

    #[test]
    fn converges_on_fixed_point() {
        let db = database();
        let controller = IterationController::new(db.clone(), IterationConfig::default());
        // x_{k+1} = (x_k + 2/x_k)/2 converges to sqrt(2).
        let outcome = controller
            .run(
                vec![1.0],
                |state, _| Ok(vec![(state[0] + 2.0 / state[0]) / 2.0]),
                l2_relative_convergence,
            )
            .unwrap();
        assert!(outcome.converged);
        assert!((outcome.final_state[0] - 2.0_f64.sqrt()).abs() < 1e-6);
        assert!(outcome.iterations < 20);
        assert_eq!(outcome.history.len(), outcome.iterations);
        // Temp table is cleaned up.
        assert!(db.list_tables().is_empty());
    }

    #[test]
    fn stops_at_iteration_cap_without_error_by_default() {
        let db = database();
        let config = IterationConfig {
            max_iterations: 5,
            ..IterationConfig::default()
        };
        let controller = IterationController::new(db, config);
        let outcome = controller
            .run(
                vec![0.0],
                |state, _| Ok(vec![state[0] + 1.0]), // never converges
                |_, _, _| false,
            )
            .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.iterations, 5);
        assert_eq!(outcome.final_state, vec![5.0]);
    }

    #[test]
    fn fails_at_cap_when_configured() {
        let db = database();
        let config = IterationConfig {
            max_iterations: 3,
            fail_on_max_iterations: true,
            ..IterationConfig::default()
        };
        let controller = IterationController::new(db, config);
        let result = controller.run(vec![0.0], |s, _| Ok(vec![s[0] + 1.0]), |_, _, _| false);
        assert!(matches!(result, Err(EngineError::DidNotConverge { .. })));
    }

    #[test]
    fn step_errors_propagate() {
        let db = database();
        let controller = IterationController::new(db, IterationConfig::default());
        let result = controller.run(
            vec![0.0],
            |_, iteration| {
                if iteration >= 2 {
                    Err(EngineError::aggregate("numerical failure"))
                } else {
                    Ok(vec![1.0])
                }
            },
            |_, _, _| false,
        );
        assert!(result.is_err());
    }

    /// Regression: a step failing mid-iteration must not leak the temp state
    /// table — the controller drops it on the error path, so a later
    /// `drop_temp_tables` has nothing left to clean up.
    #[test]
    fn failed_iteration_leaves_no_temp_tables() {
        let db = database();
        let controller = IterationController::new(db.clone(), IterationConfig::default());
        let result = controller.run(
            vec![0.0],
            |_, iteration| {
                if iteration >= 3 {
                    Err(EngineError::aggregate("step exploded"))
                } else {
                    Ok(vec![iteration as f64])
                }
            },
            |_, _, _| false,
        );
        assert!(result.is_err());
        assert!(
            db.list_tables().is_empty(),
            "failed iteration leaked tables: {:?}",
            db.list_tables()
        );
        assert_eq!(db.drop_temp_tables(), 0);
    }

    #[test]
    fn nested_drivers_get_distinct_state_tables() {
        let db = database();
        let outer = IterationController::new(db.clone(), IterationConfig::default());
        let outcome = outer
            .run(
                vec![0.0],
                |state, _| {
                    // Run a nested driver inside the outer step.
                    let inner = IterationController::new(db.clone(), IterationConfig::default());
                    let inner_outcome = inner
                        .run(
                            vec![1.0],
                            |s, _| Ok(vec![s[0] * 0.5]),
                            |p, n, _| (p[0] - n[0]).abs() < 1e-3,
                        )
                        .unwrap();
                    Ok(vec![state[0] + inner_outcome.final_state[0]])
                },
                |_, _, _| true, // one outer iteration
            )
            .unwrap();
        assert_eq!(outcome.iterations, 1);
        assert!(db.list_tables().is_empty());
    }

    #[test]
    fn l2_relative_convergence_behaviour() {
        assert!(l2_relative_convergence(&[1.0, 1.0], &[1.0, 1.0], 1e-9));
        assert!(!l2_relative_convergence(&[1.0, 1.0], &[2.0, 1.0], 1e-3));
        assert!(!l2_relative_convergence(&[1.0], &[1.0, 2.0], 1.0));
        // Scale invariance: large states tolerate proportionally large moves.
        assert!(l2_relative_convergence(&[1e9], &[1e9 + 1.0], 1e-6));
    }

    #[test]
    fn zero_max_iterations_returns_initial_state() {
        let db = database();
        let config = IterationConfig {
            max_iterations: 0,
            ..IterationConfig::default()
        };
        let controller = IterationController::new(db, config);
        let outcome = controller
            .run(
                vec![7.0],
                |_, _| unreachable!("no iterations expected"),
                |_, _, _| true,
            )
            .unwrap();
        assert_eq!(outcome.iterations, 0);
        assert_eq!(outcome.final_state, vec![7.0]);
        assert!(!outcome.converged);
    }
}
