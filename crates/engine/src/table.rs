//! Partitioned tables with chunked, column-major segment storage.
//!
//! A [`Table`] is the engine's unit of storage: a schema plus rows spread
//! across a fixed number of *segments* (partitions).  Each segment models one
//! Greenplum segment process from the paper's evaluation cluster; the
//! executor runs one worker thread per segment so that aggregate transition
//! functions stream over their local partition exactly as a parallel DBMS
//! would.
//!
//! Rows are distributed either round-robin (the default, giving balanced
//! partitions for the dense numeric workloads in the paper's Section 4.4
//! experiments) or by hashing a distribution column (`DISTRIBUTED BY` in
//! Greenplum DDL).
//!
//! Within a segment, rows live in fixed-capacity column-major
//! [`RowChunk`]s (see [`crate::chunk`]): each column of a chunk is one
//! contiguous buffer, so the executor's vectorized path can hand whole
//! columns to batched kernels instead of unpacking [`Value`]s row by row.
//! Row-shaped access ([`Table::iter`], [`Segment::iter`]) materializes rows
//! on demand and is intended for small results and tests; large scans should
//! go through [`crate::Executor`].

use crate::chunk::{Segment, CHUNK_CAPACITY};
use crate::error::{EngineError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

pub use crate::chunk::RowChunk;

/// How rows are assigned to segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Round-robin assignment (balanced, no locality guarantee).
    RoundRobin,
    /// Hash of the named column (co-locates equal keys).
    HashColumn(String),
}

/// A schema-validated, segment-partitioned, in-memory table with column-major
/// chunked storage.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    segments: Vec<Segment>,
    distribution: Distribution,
    next_round_robin: usize,
    chunk_capacity: usize,
    generation: u64,
}

impl Table {
    /// Creates an empty table with the given schema, segment count and
    /// round-robin distribution.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSegmentCount`] when `num_segments == 0`.
    pub fn new(schema: Schema, num_segments: usize) -> Result<Self> {
        Self::with_distribution(schema, num_segments, Distribution::RoundRobin)
    }

    /// Creates an empty table with an explicit distribution policy.
    ///
    /// # Errors
    /// * [`EngineError::InvalidSegmentCount`] when `num_segments == 0`.
    /// * [`EngineError::ColumnNotFound`] when hashing on an unknown column.
    pub fn with_distribution(
        schema: Schema,
        num_segments: usize,
        distribution: Distribution,
    ) -> Result<Self> {
        if num_segments == 0 {
            return Err(EngineError::InvalidSegmentCount { requested: 0 });
        }
        if let Distribution::HashColumn(ref name) = distribution {
            schema.index_of(name)?;
        }
        Ok(Self {
            schema,
            segments: (0..num_segments).map(|_| Segment::new()).collect(),
            distribution,
            next_round_robin: 0,
            chunk_capacity: CHUNK_CAPACITY,
            generation: 0,
        })
    }

    /// Reassembles a table from recovered segment storage (the persistence
    /// layer's chunk files plus the manifest's tail chunks and metadata).
    pub(crate) fn from_recovered(
        schema: Schema,
        segments: Vec<Segment>,
        distribution: Distribution,
        next_round_robin: usize,
        chunk_capacity: usize,
    ) -> Self {
        Self {
            schema,
            segments,
            distribution,
            next_round_robin,
            chunk_capacity,
            generation: 0,
        }
    }

    /// The next round-robin segment cursor (persisted so that recovery
    /// continues routing appends exactly where the pre-crash table would).
    pub(crate) fn next_round_robin(&self) -> usize {
        self.next_round_robin
    }

    /// Restores the round-robin cursor (WAL replay of wholesale-contents
    /// records, which refill segments directly and bypass the cursor).
    pub(crate) fn set_next_round_robin(&mut self, cursor: usize) {
        self.next_round_robin = cursor % self.segments.len();
    }

    /// Overrides the number of rows per chunk (default
    /// [`CHUNK_CAPACITY`]).  Must be called on an empty table; used by tests
    /// and benchmarks to exercise chunk-boundary behaviour.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] when the capacity is zero or
    /// the table already has rows.
    pub fn with_chunk_capacity(mut self, chunk_capacity: usize) -> Result<Self> {
        if chunk_capacity == 0 {
            return Err(EngineError::invalid("chunk capacity must be positive"));
        }
        if !self.is_empty() {
            return Err(EngineError::invalid(
                "chunk capacity can only be set on an empty table",
            ));
        }
        self.chunk_capacity = chunk_capacity;
        Ok(self)
    }

    /// Rows per chunk in segment storage.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of segments (partitions).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total number of rows across all segments.
    pub fn row_count(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// A single segment's chunked storage.
    pub fn segment(&self, idx: usize) -> &Segment {
        &self.segments[idx]
    }

    /// The distribution policy.
    pub fn distribution(&self) -> &Distribution {
        &self.distribution
    }

    /// The table's lifecycle generation.
    ///
    /// [`crate::Database`] assigns a fresh generation whenever the identity
    /// of a cataloged table's contents changes wholesale — create, register,
    /// replace, truncate, or drop-and-recreate under the same name.  Chunk
    /// watermarks ([`crate::materialize::MaterializedAggregate`]) record the
    /// generation they absorbed; a mismatch proves the watermark's chunk
    /// counts describe a *different* table incarnation, forcing a rebuild
    /// instead of silently folding the new table's suffix onto stale partial
    /// states.  Standalone tables built directly via [`Table::new`] keep
    /// generation 0.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stamps the table with a database-assigned lifecycle generation.
    pub(crate) fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Inserts a row, validating it against the schema and routing it to a
    /// segment according to the distribution policy.
    ///
    /// Values are stored in the column's physical type: a `bigint` value
    /// inserted into a `double precision` column is coerced to `f64` once at
    /// insert (rather than on every scan), so it reads back as
    /// [`Value::Double`] — e.g. from [`Table::iter`], [`Table::column_values`]
    /// and in [`crate::expr::Predicate::ColumnEquals`] comparisons, which
    /// follow SQL in comparing against the column's declared type.
    ///
    /// # Errors
    /// Propagates schema-validation errors.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.validate(row.values())?;
        let seg = match &self.distribution {
            Distribution::RoundRobin => {
                let seg = self.next_round_robin;
                self.next_round_robin = (self.next_round_robin + 1) % self.segments.len();
                seg
            }
            Distribution::HashColumn(name) => {
                let idx = self.schema.index_of(name)?;
                (row.get(idx).stable_hash() % self.segments.len() as u64) as usize
            }
        };
        self.segments[seg].push(&self.schema, row.values(), self.chunk_capacity)
    }

    /// Inserts a row into an explicit segment, bypassing the distribution
    /// policy.  Used by consumers that must *preserve* an existing placement —
    /// e.g. [`crate::dataset::Dataset::gather_groups`], which splits a table
    /// into per-group tables whose rows keep their original segment so that
    /// per-segment scan and merge order (and therefore bitwise results) are
    /// unchanged.
    ///
    /// # Errors
    /// Propagates schema-validation errors; returns
    /// [`EngineError::InvalidArgument`] for an out-of-range segment index.
    pub fn insert_into_segment(&mut self, segment: usize, row: Row) -> Result<()> {
        self.schema.validate(row.values())?;
        if segment >= self.segments.len() {
            return Err(EngineError::invalid(format!(
                "segment index {segment} out of range (table has {} segments)",
                self.segments.len()
            )));
        }
        self.segments[segment].push(&self.schema, row.values(), self.chunk_capacity)
    }

    /// Inserts many rows.
    ///
    /// # Errors
    /// Stops at and reports the first invalid row.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Iterates over all rows in segment order, materializing each row from
    /// the column-major chunks.  Large scans inside methods should instead go
    /// through the parallel [`crate::Executor`]; this serial iterator exists
    /// for small result tables and tests.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.segments.iter().flat_map(|s| s.iter())
    }

    /// Collects all rows into a vector (serial; for small tables).
    pub fn collect_rows(&self) -> Vec<Row> {
        self.iter().collect()
    }

    /// Returns a new table with identical content but repartitioned across a
    /// different number of segments.  Used by the benchmark harness to sweep
    /// the "# segments" axis of Figure 4 over the same logical data.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSegmentCount`] when `num_segments == 0`.
    pub fn repartition(&self, num_segments: usize) -> Result<Table> {
        let mut out =
            Table::with_distribution(self.schema.clone(), num_segments, self.distribution.clone())?;
        out.chunk_capacity = self.chunk_capacity;
        for row in self.iter() {
            out.insert(row)?;
        }
        Ok(out)
    }

    /// Extracts a single column as values, in segment order.
    ///
    /// # Errors
    /// Returns [`EngineError::ColumnNotFound`] for an unknown column.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        let mut out = Vec::with_capacity(self.row_count());
        for segment in &self.segments {
            for chunk in segment.chunks() {
                for i in 0..chunk.len() {
                    out.push(chunk.value(i, idx));
                }
            }
        }
        Ok(out)
    }

    /// Truncates the table, keeping schema and partitioning.
    pub fn truncate(&mut self) {
        for seg in &mut self.segments {
            seg.clear();
        }
        self.next_round_robin = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ])
    }

    #[test]
    fn round_robin_balances_rows() {
        let mut t = Table::new(schema(), 4).unwrap();
        for i in 0..100 {
            t.insert(row![i as i64, i as f64]).unwrap();
        }
        assert_eq!(t.row_count(), 100);
        for s in 0..4 {
            assert_eq!(t.segment(s).len(), 25);
        }
        assert!(!t.is_empty());
    }

    #[test]
    fn hash_distribution_colocates_keys() {
        let mut t =
            Table::with_distribution(schema(), 4, Distribution::HashColumn("id".into())).unwrap();
        for i in 0..40 {
            t.insert(row![(i % 4) as i64, i as f64]).unwrap();
        }
        // Every row with the same id must be in the same segment.
        for key in 0..4i64 {
            let segments_containing: Vec<usize> = (0..4)
                .filter(|&s| t.segment(s).iter().any(|r| r.get(0) == &Value::Int(key)))
                .collect();
            assert_eq!(
                segments_containing.len(),
                1,
                "key {key} split across segments"
            );
        }
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = Table::new(schema(), 2).unwrap();
        assert!(t.insert(row!["not an int", 1.0]).is_err());
        assert!(t.insert(Row::new(vec![Value::Int(1)])).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn zero_segments_rejected() {
        assert!(Table::new(schema(), 0).is_err());
        assert!(
            Table::with_distribution(schema(), 2, Distribution::HashColumn("missing".into()))
                .is_err()
        );
    }

    #[test]
    fn repartition_preserves_rows() {
        let mut t = Table::new(schema(), 3).unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, (i * 2) as f64]).unwrap();
        }
        let r = t.repartition(7).unwrap();
        assert_eq!(r.num_segments(), 7);
        assert_eq!(r.row_count(), 10);
        let mut ids: Vec<i64> = r
            .column_values("id")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert!(t.repartition(0).is_err());
    }

    #[test]
    fn truncate_and_column_values() {
        let mut t = Table::new(schema(), 2).unwrap();
        t.insert(row![1i64, 5.0]).unwrap();
        t.insert(row![2i64, 6.0]).unwrap();
        let vals = t.column_values("v").unwrap();
        assert_eq!(vals.len(), 2);
        assert!(t.column_values("nope").is_err());
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.num_segments(), 2);
    }

    #[test]
    fn insert_all_and_collect() {
        let mut t = Table::new(schema(), 2).unwrap();
        t.insert_all((0..6).map(|i| row![i as i64, 0.0])).unwrap();
        assert_eq!(t.collect_rows().len(), 6);
        assert_eq!(t.iter().count(), 6);
    }

    #[test]
    fn storage_is_chunked_column_major() {
        let mut t = Table::new(schema(), 2)
            .unwrap()
            .with_chunk_capacity(3)
            .unwrap();
        assert_eq!(t.chunk_capacity(), 3);
        for i in 0..14 {
            t.insert(row![i as i64, i as f64]).unwrap();
        }
        // 7 rows per segment at capacity 3 -> chunks of 3, 3, 1.
        for s in 0..2 {
            let chunks = t.segment(s).chunks();
            assert_eq!(chunks.len(), 3);
            assert_eq!(chunks[0].len(), 3);
            assert_eq!(chunks[2].len(), 1);
            // The double column of a chunk is one contiguous slice.
            let v = chunks[0].doubles(1).unwrap();
            assert_eq!(v.values.len(), 3);
        }
        // Repartition keeps the overridden capacity.
        assert_eq!(t.repartition(3).unwrap().chunk_capacity(), 3);
    }

    #[test]
    fn chunk_capacity_guard_rails() {
        let t = Table::new(schema(), 1).unwrap();
        assert!(t.clone().with_chunk_capacity(0).is_err());
        let mut populated = Table::new(schema(), 1).unwrap();
        populated.insert(row![1i64, 1.0]).unwrap();
        assert!(populated.with_chunk_capacity(8).is_err());
    }
}
