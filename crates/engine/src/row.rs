//! Rows: ordered tuples of values.

use crate::error::Result;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A tuple of values, positionally matching some [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of values in the row.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Convenience accessor: value of the named column, resolved via `schema`.
    ///
    /// # Errors
    /// Returns [`crate::EngineError::ColumnNotFound`] for an unknown column.
    pub fn get_named(&self, schema: &Schema, name: &str) -> Result<&Value> {
        Ok(&self.values[schema.index_of(name)?])
    }

    /// Consumes the row and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Self::new(values)
    }
}

/// Builds a row from anything convertible to [`Value`]s.
///
/// ```
/// use madlib_engine::{row, Value};
/// let r = row![1i64, 2.5, "label"];
/// assert_eq!(r.get(0), &Value::Int(1));
/// assert_eq!(r.get(1), &Value::Double(2.5));
/// ```
#[macro_export]
macro_rules! row {
    ($($value:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($value)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    #[test]
    fn construction_and_access() {
        let r = Row::new(vec![Value::Int(1), Value::Double(2.0)]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(1), &Value::Double(2.0));
        assert_eq!(r.values().len(), 2);
        assert_eq!(r.clone().into_values().len(), 2);
    }

    #[test]
    fn named_access_via_schema() {
        let schema = Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("b", ColumnType::Double),
        ]);
        let r = Row::new(vec![Value::Int(7), Value::Double(1.5)]);
        assert_eq!(r.get_named(&schema, "b").unwrap(), &Value::Double(1.5));
        assert!(r.get_named(&schema, "zzz").is_err());
    }

    #[test]
    fn row_macro_converts_types() {
        let r = row![42i64, 3.25, true, "text"];
        assert_eq!(r.get(0), &Value::Int(42));
        assert_eq!(r.get(1), &Value::Double(3.25));
        assert_eq!(r.get(2), &Value::Bool(true));
        assert_eq!(r.get(3), &Value::Text("text".into()));
    }
}
