//! Templated-query support: schema introspection.
//!
//! The paper (Section 3.1.3) describes "templated queries" that must work
//! over arbitrary input schemas — the `profile` module takes any table and
//! produces per-column summary statistics, so its output schema is a function
//! of its input schema.  MADlib implements this by interrogating the database
//! catalog from Python and synthesizing SQL.  The equivalent here is a small
//! introspection API: given a table, enumerate its columns with their types
//! and classify them, so library code can generate the per-column plan
//! programmatically, with validation errors raised *before* execution (the
//! paper calls out that late syntax errors from generated SQL hurt
//! usability).

use crate::error::{EngineError, Result};
use crate::schema::{ColumnType, Schema};
use crate::table::Table;

/// How a templated module should treat a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnRole {
    /// Numeric scalar: gets mean / variance / min / max style summaries.
    Numeric,
    /// Categorical (text): gets distinct counts and most-common values.
    Categorical,
    /// Array-valued: treated as a feature vector.
    FeatureVector,
    /// Other array types (text[]/bigint[]).
    OtherArray,
}

/// A column description produced by introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnInfo {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub column_type: ColumnType,
    /// Role assigned by [`classify_column`].
    pub role: ColumnRole,
}

/// Classifies a column type into the role a templated module should use.
pub fn classify_column(column_type: ColumnType) -> ColumnRole {
    match column_type {
        ColumnType::Int | ColumnType::Double | ColumnType::Bool => ColumnRole::Numeric,
        ColumnType::Text => ColumnRole::Categorical,
        ColumnType::DoubleArray => ColumnRole::FeatureVector,
        ColumnType::TextArray | ColumnType::IntArray => ColumnRole::OtherArray,
    }
}

/// Introspects a table, returning one [`ColumnInfo`] per column in schema
/// order.
pub fn describe_table(table: &Table) -> Vec<ColumnInfo> {
    describe_schema(table.schema())
}

/// Introspects a schema (catalog-only version of [`describe_table`]).
pub fn describe_schema(schema: &Schema) -> Vec<ColumnInfo> {
    schema
        .columns()
        .iter()
        .map(|c| ColumnInfo {
            name: c.name.clone(),
            column_type: c.column_type,
            role: classify_column(c.column_type),
        })
        .collect()
}

/// Validates, up front, that every column named in `required` exists in the
/// schema and (when a type is given) has that type.  Method drivers call this
/// before doing any work so that user errors surface immediately with a clear
/// message, rather than deep inside a generated plan.
///
/// # Errors
/// * [`EngineError::ColumnNotFound`] for a missing column.
/// * [`EngineError::TypeMismatch`] when an expected type is violated.
pub fn validate_columns(schema: &Schema, required: &[(&str, Option<ColumnType>)]) -> Result<()> {
    for (name, expected_type) in required {
        let column = schema.column(name)?;
        if let Some(expected) = expected_type {
            if column.column_type != *expected {
                return Err(EngineError::TypeMismatch {
                    expected: expected.sql_name(),
                    found: format!("{} (column {})", column.column_type.sql_name(), name),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("name", ColumnType::Text),
            Column::new("features", ColumnType::DoubleArray),
            Column::new("tokens", ColumnType::TextArray),
            Column::new("score", ColumnType::Double),
        ])
    }

    #[test]
    fn classification_covers_all_types() {
        assert_eq!(classify_column(ColumnType::Int), ColumnRole::Numeric);
        assert_eq!(classify_column(ColumnType::Double), ColumnRole::Numeric);
        assert_eq!(classify_column(ColumnType::Bool), ColumnRole::Numeric);
        assert_eq!(classify_column(ColumnType::Text), ColumnRole::Categorical);
        assert_eq!(
            classify_column(ColumnType::DoubleArray),
            ColumnRole::FeatureVector
        );
        assert_eq!(
            classify_column(ColumnType::TextArray),
            ColumnRole::OtherArray
        );
        assert_eq!(
            classify_column(ColumnType::IntArray),
            ColumnRole::OtherArray
        );
    }

    #[test]
    fn describe_preserves_order_and_roles() {
        let infos = describe_schema(&schema());
        assert_eq!(infos.len(), 5);
        assert_eq!(infos[0].name, "id");
        assert_eq!(infos[0].role, ColumnRole::Numeric);
        assert_eq!(infos[1].role, ColumnRole::Categorical);
        assert_eq!(infos[2].role, ColumnRole::FeatureVector);
        assert_eq!(infos[3].role, ColumnRole::OtherArray);

        let table = Table::new(schema(), 2).unwrap();
        assert_eq!(describe_table(&table), infos);
    }

    #[test]
    fn validate_columns_reports_problems_up_front() {
        let s = schema();
        assert!(validate_columns(
            &s,
            &[
                ("score", Some(ColumnType::Double)),
                ("features", Some(ColumnType::DoubleArray)),
                ("name", None),
            ]
        )
        .is_ok());
        assert!(matches!(
            validate_columns(&s, &[("missing", None)]),
            Err(EngineError::ColumnNotFound { .. })
        ));
        assert!(matches!(
            validate_columns(&s, &[("name", Some(ColumnType::Double))]),
            Err(EngineError::TypeMismatch { .. })
        ));
    }
}
