//! The reusable chunk-at-a-time scan pipeline.
//!
//! PR 1 vectorized the ungrouped aggregate scan; this module extracts the
//! pieces that made it fast — per-segment chunk iteration, predicate
//! evaluation hoisted to one [`crate::chunk::SelectionMask`] per chunk, compaction of
//! partially selected chunks, and the thread-per-segment fan-out — into
//! free functions every scan consumer shares.  The executor's ungrouped
//! aggregation, grouped aggregation, and `parallel_map` are all thin
//! compositions of these primitives, so a new consumer (a sketch pass, a
//! projection, a custom driver) opts into vectorized execution by writing a
//! per-batch sink instead of re-implementing the scan loop.
//!
//! The fan-out ([`run_per_segment`]) additionally converts worker panics
//! into [`EngineError::WorkerPanicked`] values instead of aborting the
//! coordinating thread, so a buggy user-defined aggregate surfaces as an
//! error the driver can handle — the behaviour a DBMS gives a crashing UDF
//! query.

use crate::chunk::{RowChunk, Segment};
use crate::error::{EngineError, Result};
use crate::expr::Predicate;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;

/// One batch of filter-surviving rows handed to a scan sink: either a whole
/// chunk that passed the predicate untouched, or a compacted copy of the
/// selected rows of a partially selected chunk.
#[derive(Debug)]
pub enum ScanBatch<'a> {
    /// Every row of the chunk was selected; the chunk is borrowed as-is.
    Full(&'a RowChunk),
    /// Only some rows were selected; they were gathered into a compacted
    /// chunk (row order preserved).
    Compacted(RowChunk),
}

impl ScanBatch<'_> {
    /// The batch's rows as a column-major chunk.
    pub fn chunk(&self) -> &RowChunk {
        match self {
            ScanBatch::Full(chunk) => chunk,
            ScanBatch::Compacted(chunk) => chunk,
        }
    }
}

/// Row counters for one segment scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentScanStats {
    /// Rows read from storage.
    pub rows_scanned: u64,
    /// Rows that survived the filter and reached the sink.
    pub rows_passed: u64,
}

/// Streams one segment chunk-at-a-time through `sink`.
///
/// `filter` is evaluated once per chunk ([`Predicate::evaluate_chunk`] →
/// [`crate::chunk::SelectionMask`]); chunks with no selected rows are skipped, fully
/// selected chunks are passed through borrowed, and partially selected
/// chunks are gathered into a compacted chunk first.
///
/// # Errors
/// Propagates predicate-evaluation errors and errors returned by `sink`.
pub fn scan_segment_chunks<F>(
    segment: &Segment,
    schema: &Schema,
    filter: Option<&Predicate>,
    mut sink: F,
) -> Result<SegmentScanStats>
where
    F: FnMut(ScanBatch<'_>) -> Result<()>,
{
    let mut stats = SegmentScanStats::default();
    for chunk in segment.chunks() {
        if chunk.is_empty() {
            continue;
        }
        stats.rows_scanned += chunk.len() as u64;
        match filter {
            None => {
                stats.rows_passed += chunk.len() as u64;
                sink(ScanBatch::Full(chunk))?;
            }
            Some(predicate) => {
                // Filter once per chunk, not once per row.
                let mask = predicate.evaluate_chunk(chunk, schema)?;
                let selected = mask.count_selected();
                if selected == 0 {
                    continue;
                }
                stats.rows_passed += selected as u64;
                if selected == chunk.len() {
                    sink(ScanBatch::Full(chunk))?;
                } else {
                    sink(ScanBatch::Compacted(chunk.gather(&mask)))?;
                }
            }
        }
    }
    Ok(stats)
}

/// Streams one segment row-at-a-time through `sink` — the legacy scan shape,
/// kept for [`crate::ExecutionMode::RowAtATime`] and for consumers the
/// chunked path cannot represent.  Predicates are evaluated per row;
/// counters match [`scan_segment_chunks`] exactly.
///
/// # Errors
/// Propagates predicate-evaluation errors and errors returned by `sink`.
pub fn scan_segment_rows<F>(
    segment: &Segment,
    schema: &Schema,
    filter: Option<&Predicate>,
    mut sink: F,
) -> Result<SegmentScanStats>
where
    F: FnMut(&Row) -> Result<()>,
{
    let mut stats = SegmentScanStats::default();
    for row in segment.iter() {
        stats.rows_scanned += 1;
        if let Some(pred) = filter {
            if !pred.evaluate(&row, schema)? {
                continue;
            }
        }
        stats.rows_passed += 1;
        sink(&row)?;
    }
    Ok(stats)
}

/// Runs `work` once per segment of `table` — on parallel worker threads when
/// `parallel` is set and the table has more than one segment — and returns
/// the per-segment results in segment order.
///
/// The fan-out spawns at most `min(segments, available hardware threads)`
/// workers and stripes segments across them: oversubscribing the machine
/// (e.g. 4 workers with 80 MB of grouped state each on a single core) only
/// adds context-switch and cache-thrash cost, so a 1-core host degenerates
/// to the serial loop while results stay identical — each segment is still
/// processed independently and merged in segment order.
///
/// A panicking worker does **not** abort the coordinator: the panic payload
/// is captured and surfaced as [`EngineError::WorkerPanicked`] in that
/// segment's slot, while the remaining segments still run to completion.
pub fn run_per_segment<T, F>(table: &Table, parallel: bool, work: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize, &Segment) -> Result<T> + Sync,
{
    let num_segments = table.num_segments();
    let run_caught = |seg: usize| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            work(seg, table.segment(seg))
        }))
        .unwrap_or_else(|payload| Err(worker_panic_error(payload.as_ref())))
    };
    let workers = if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(num_segments)
    } else {
        1
    };
    if workers <= 1 {
        return (0..num_segments).map(run_caught).collect();
    }
    let mut results: Vec<Option<Result<T>>> = (0..num_segments).map(|_| None).collect();
    std::thread::scope(|scope| {
        let run_caught = &run_caught;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    (w..num_segments)
                        .step_by(workers)
                        .map(|seg| (seg, run_caught(seg)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // Workers catch panics per segment, so joins cannot fail.
            for (seg, result) in handle.join().expect("worker catches its panics") {
                results[seg] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every segment striped to exactly one worker"))
        .collect()
}

/// Extracts a human-readable message from a panic payload.
fn worker_panic_error(payload: &(dyn std::any::Any + Send)) -> EngineError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic payload of unknown type".to_owned());
    EngineError::WorkerPanicked { message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn make_table(segments: usize, rows: usize) -> Table {
        let schema = Schema::new(vec![Column::new("y", ColumnType::Double)]);
        let mut t = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        for i in 0..rows {
            t.insert(row![i as f64]).unwrap();
        }
        t
    }

    #[test]
    fn chunked_scan_counts_and_filters() {
        let t = make_table(1, 50);
        let pred = Predicate::column_gt("y", 24.5);
        let mut seen = 0u64;
        let stats = scan_segment_chunks(t.segment(0), t.schema(), Some(&pred), |batch| {
            seen += batch.chunk().len() as u64;
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.rows_scanned, 50);
        assert_eq!(stats.rows_passed, 25);
        assert_eq!(seen, 25);
    }

    #[test]
    fn row_scan_matches_chunked_counters() {
        let t = make_table(1, 37);
        let pred = Predicate::column_lt("y", 10.0);
        let chunked =
            scan_segment_chunks(t.segment(0), t.schema(), Some(&pred), |_| Ok(())).unwrap();
        let by_rows = scan_segment_rows(t.segment(0), t.schema(), Some(&pred), |_| Ok(())).unwrap();
        assert_eq!(chunked, by_rows);
    }

    #[test]
    fn per_segment_fanout_preserves_order() {
        let t = make_table(4, 40);
        let results = run_per_segment(&t, true, |seg, segment| Ok((seg, segment.len())));
        let collected: Vec<(usize, usize)> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 4);
        for (i, (seg, len)) in collected.iter().enumerate() {
            assert_eq!(*seg, i);
            assert_eq!(*len, 10);
        }
    }

    #[test]
    fn worker_panics_become_errors() {
        let t = make_table(3, 9);
        for parallel in [true, false] {
            let results: Vec<Result<()>> = run_per_segment(&t, parallel, |seg, _| {
                if seg == 1 {
                    panic!("boom in segment {seg}");
                }
                Ok(())
            });
            assert!(results[0].is_ok());
            assert!(results[2].is_ok());
            match &results[1] {
                Err(EngineError::WorkerPanicked { message }) => {
                    assert!(message.contains("boom"), "unexpected message: {message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }
}
