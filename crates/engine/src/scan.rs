//! The reusable chunk-at-a-time scan pipeline.
//!
//! PR 1 vectorized the ungrouped aggregate scan; this module extracts the
//! pieces that made it fast — per-segment chunk iteration, predicate
//! evaluation hoisted to one [`crate::chunk::SelectionMask`] per chunk, compaction of
//! partially selected chunks, and the thread-per-segment fan-out — into
//! free functions every scan consumer shares.  The executor's ungrouped
//! aggregation, grouped aggregation, and `parallel_map` are all thin
//! compositions of these primitives, so a new consumer (a sketch pass, a
//! projection, a custom driver) opts into vectorized execution by writing a
//! per-batch sink instead of re-implementing the scan loop.
//!
//! The fan-out ([`run_per_segment`]) additionally converts worker panics
//! into [`EngineError::WorkerPanicked`] values instead of aborting the
//! coordinating thread, so a buggy user-defined aggregate surfaces as an
//! error the driver can handle — the behaviour a DBMS gives a crashing UDF
//! query.
//!
//! # Scheduling
//!
//! Both fan-outs — [`run_per_segment`] / [`run_per_segment_ranged`] over a
//! table's segments and [`run_per_item`] over an owned work list (per-group
//! finalize states, gathered per-group tables) — use the same
//! **work-stealing** scheduler: workers claim the next unclaimed unit from a
//! shared atomic cursor instead of being striped statically, so a skewed
//! workload (one hot tenant, one giant group) no longer serializes the
//! worker that happened to own it while its siblings sit idle.  Results land
//! in per-unit slots and are reassembled in input order, so the output —
//! including which unit an error or [`EngineError::WorkerPanicked`] belongs
//! to — is bit-identical to the serial loop regardless of which worker ran
//! which unit.
//!
//! # Stealing granularity
//!
//! Segment-granular stealing still serializes a workload whose skew lives
//! *inside* one segment: one hot segment is one unit, owned end-to-end by
//! one worker.  [`run_per_segment_ranged`] therefore splits segments into
//! [`ChunkRange`] units of at most [`CHUNKS_PER_UNIT`] chunks when asked for
//! [`StealGranularity::ChunkRange`], merging each segment's per-unit results
//! back together in range order with a caller-supplied `merge`.  The
//! decomposition is a pure function of the table — never of the worker
//! count — so a scan's result is independent of scheduling and thread count
//! at *either* granularity.  The granularities themselves may differ
//! bitwise for floating-point aggregate states (merging partial states
//! reassociates additions), which is why chunk-range stealing is opt-in for
//! aggregations ([`crate::Executor::with_steal_granularity`]) while
//! order-preserving concatenation consumers (`map_chunks`) use it
//! unconditionally.
//!
//! The worker count comes from [`worker_count`]: the `MADLIB_THREADS`
//! environment variable when set to a positive integer, the machine's
//! available parallelism otherwise (an invalid override logs a warning once
//! rather than being silently ignored).

use crate::chunk::{RowChunk, Segment};
use crate::error::{EngineError, Result};
use crate::expr::Predicate;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One batch of filter-surviving rows handed to a scan sink: either a whole
/// chunk that passed the predicate untouched, or a compacted copy of the
/// selected rows of a partially selected chunk.
#[derive(Debug)]
pub enum ScanBatch<'a> {
    /// Every row of the chunk was selected; the chunk is borrowed as-is.
    Full(&'a RowChunk),
    /// Only some rows were selected; they were gathered into a compacted
    /// chunk (row order preserved).
    Compacted(RowChunk),
}

impl ScanBatch<'_> {
    /// The batch's rows as a column-major chunk.
    pub fn chunk(&self) -> &RowChunk {
        match self {
            ScanBatch::Full(chunk) => chunk,
            ScanBatch::Compacted(chunk) => chunk,
        }
    }
}

/// Row counters for one segment scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentScanStats {
    /// Rows read from storage.
    pub rows_scanned: u64,
    /// Rows that survived the filter and reached the sink.
    pub rows_passed: u64,
}

/// Streams one segment chunk-at-a-time through `sink`.
///
/// `filter` is evaluated once per chunk ([`Predicate::evaluate_chunk`] →
/// [`crate::chunk::SelectionMask`]); chunks with no selected rows are skipped, fully
/// selected chunks are passed through borrowed, and partially selected
/// chunks are gathered into a compacted chunk first.
///
/// # Errors
/// Propagates predicate-evaluation errors and errors returned by `sink`.
pub fn scan_segment_chunks<F>(
    segment: &Segment,
    schema: &Schema,
    filter: Option<&Predicate>,
    sink: F,
) -> Result<SegmentScanStats>
where
    F: FnMut(ScanBatch<'_>) -> Result<()>,
{
    scan_chunks(segment.chunks(), schema, filter, sink)
}

/// Streams a slice of chunks through `sink` — the ranged core of
/// [`scan_segment_chunks`], also usable on a [`ChunkRange`]'s sub-slice of a
/// segment's chunks.  Filtering and compaction behave exactly as in
/// [`scan_segment_chunks`].
///
/// # Errors
/// Propagates predicate-evaluation errors and errors returned by `sink`.
pub fn scan_chunks<F>(
    chunks: &[Arc<RowChunk>],
    schema: &Schema,
    filter: Option<&Predicate>,
    mut sink: F,
) -> Result<SegmentScanStats>
where
    F: FnMut(ScanBatch<'_>) -> Result<()>,
{
    let mut stats = SegmentScanStats::default();
    for chunk in chunks {
        let chunk: &RowChunk = chunk;
        if chunk.is_empty() {
            continue;
        }
        stats.rows_scanned += chunk.len() as u64;
        match filter {
            None => {
                stats.rows_passed += chunk.len() as u64;
                sink(ScanBatch::Full(chunk))?;
            }
            Some(predicate) => {
                // Filter once per chunk, not once per row.
                let mask = predicate.evaluate_chunk(chunk, schema)?;
                let selected = mask.count_selected();
                if selected == 0 {
                    continue;
                }
                stats.rows_passed += selected as u64;
                if selected == chunk.len() {
                    sink(ScanBatch::Full(chunk))?;
                } else {
                    sink(ScanBatch::Compacted(chunk.gather(&mask)))?;
                }
            }
        }
    }
    Ok(stats)
}

/// Streams one segment row-at-a-time through `sink` — the legacy scan shape,
/// kept for [`crate::ExecutionMode::RowAtATime`] and for consumers the
/// chunked path cannot represent.  Predicates are evaluated per row;
/// counters match [`scan_segment_chunks`] exactly.
///
/// # Errors
/// Propagates predicate-evaluation errors and errors returned by `sink`.
pub fn scan_segment_rows<F>(
    segment: &Segment,
    schema: &Schema,
    filter: Option<&Predicate>,
    mut sink: F,
) -> Result<SegmentScanStats>
where
    F: FnMut(&Row) -> Result<()>,
{
    let mut stats = SegmentScanStats::default();
    for row in segment.iter() {
        stats.rows_scanned += 1;
        if let Some(pred) = filter {
            if !pred.evaluate(&row, schema)? {
                continue;
            }
        }
        stats.rows_passed += 1;
        sink(&row)?;
    }
    Ok(stats)
}

/// Number of worker threads parallel fan-outs may spawn: the
/// `MADLIB_THREADS` environment variable when it parses as a positive
/// integer, the machine's available parallelism otherwise.
///
/// This is the single thread-count policy shared by [`run_per_segment`],
/// [`run_per_item`] and the benchmark harness — the override exists so a
/// shared benchmark host (or a test) can pin the pool size without touching
/// cgroup limits.  An override that does not parse as a positive integer
/// (empty, `0`, `lots`) logs a warning to stderr — once per process — and
/// falls back to the machine's parallelism: a typo'd pin on a benchmark host
/// should be loud, not silently absorbed.  The environment is re-read on
/// every call (benchmarks re-pin mid-process); only the warning is deduped.
pub fn worker_count() -> usize {
    let (workers, warning) = worker_count_from(std::env::var("MADLIB_THREADS").ok().as_deref());
    if let Some(warning) = warning {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| eprintln!("madlib-engine: {warning}"));
    }
    workers
}

/// The pure policy behind [`worker_count`], split out so the parsing can be
/// tested without racing on the process environment: a positive-integer
/// override wins; anything else (empty, `0`, garbage) falls back to the
/// machine's available parallelism and returns the warning that should be
/// logged.  An *unset* variable is not an error and never warns.
pub fn worker_count_from(env_override: Option<&str>) -> (usize, Option<String>) {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let Some(raw) = env_override else {
        return (fallback(), None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => (n, None),
        _ => (
            fallback(),
            Some(format!(
                "invalid MADLIB_THREADS value {raw:?} (expected a positive integer); \
                 falling back to available parallelism"
            )),
        ),
    }
}

/// Runs `work` once per segment of `table` — on parallel worker threads when
/// `parallel` is set and the table has more than one segment — and returns
/// the per-segment results in segment order.
///
/// The fan-out spawns at most `min(segments, `[`worker_count`]`)` workers
/// which **steal work**: each worker claims the next unclaimed segment from
/// a shared atomic cursor, so a skewed table (one giant segment next to
/// near-empty ones) keeps every worker busy instead of serializing the
/// worker that statically owned the hot segment.  Oversubscribing the
/// machine (e.g. 4 workers with 80 MB of grouped state each on a single
/// core) only adds context-switch and cache-thrash cost, so a 1-core host
/// degenerates to the serial loop.  Results land in per-segment slots and
/// are returned in segment order, so output is bit-identical to the serial
/// loop no matter which worker ran which segment.
///
/// A panicking worker does **not** abort the coordinator: the panic payload
/// is captured and surfaced as [`EngineError::WorkerPanicked`] in that
/// segment's slot, while the remaining segments still run to completion.
pub fn run_per_segment<T, F>(table: &Table, parallel: bool, work: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize, &Segment) -> Result<T> + Sync,
{
    let workers = if parallel {
        worker_count().min(table.num_segments())
    } else {
        1
    };
    run_per_segment_with_workers(table, workers, work)
}

/// [`run_per_segment`] with an explicit worker count, so tests can force the
/// multi-worker stealing path regardless of how many cores the host exposes.
fn run_per_segment_with_workers<T, F>(table: &Table, workers: usize, work: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize, &Segment) -> Result<T> + Sync,
{
    // At Segment granularity every segment is exactly one unit, so the merge
    // closure is never invoked.
    run_units_with_workers(
        table,
        chunk_range_units(table, StealGranularity::Segment),
        workers,
        |range, segment| work(range.segment, segment),
        |left, _right| left,
    )
}

/// How the parallel scan fan-out decomposes a table into steal-able units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StealGranularity {
    /// One work unit per segment (the default).  A segment's chunks stream
    /// through one worker sequentially, so per-segment results are
    /// bit-identical to the serial scan — but one hot segment serializes on
    /// the worker that claimed it.
    #[default]
    Segment,
    /// Segments split into [`ChunkRange`] units of at most
    /// [`CHUNKS_PER_UNIT`] chunks, so one hot segment spreads across every
    /// worker.  Per-unit results are merged back per segment in range order;
    /// for floating-point aggregate states that merge *reassociates*
    /// additions, so results can differ bitwise from [`Segment`] granularity
    /// (while remaining independent of worker count and scheduling).
    ChunkRange,
}

impl StealGranularity {
    /// Stable lowercase label (used in bench metadata and logs).
    pub fn label(self) -> &'static str {
        match self {
            StealGranularity::Segment => "segment",
            StealGranularity::ChunkRange => "chunk-range",
        }
    }
}

/// One steal-able work unit: the chunks `chunk_lo..chunk_hi` of segment
/// `segment`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// Index of the segment the range belongs to.
    pub segment: usize,
    /// First chunk of the range (inclusive).
    pub chunk_lo: usize,
    /// End of the range (exclusive).  `chunk_lo == chunk_hi` is an empty
    /// range, emitted so even an empty segment yields one unit (and thus one
    /// per-segment result).
    pub chunk_hi: usize,
}

impl ChunkRange {
    /// The range's chunks within `segment` (which must be the segment the
    /// range was decomposed from).
    pub fn chunks<'a>(&self, segment: &'a Segment) -> &'a [Arc<RowChunk>] {
        &segment.chunks()[self.chunk_lo..self.chunk_hi]
    }
}

/// Chunks per [`ChunkRange`] unit under [`StealGranularity::ChunkRange`].
///
/// At the default chunk capacity (1024 rows) one unit is ≤ 4096 rows — fine
/// enough that a single hot segment splits across every worker, coarse
/// enough that the per-unit scheduling cost (one atomic claim, one state
/// merge) stays negligible against scanning the rows.
pub const CHUNKS_PER_UNIT: usize = 4;

/// Decomposes `table` into the steal-able units [`run_per_segment_ranged`]
/// schedules — a **pure function of the table and granularity**, never of
/// the worker count, so results (and the merge structure behind them) do not
/// depend on scheduling.  Every segment yields at least one unit, in
/// `(segment, chunk_lo)` order.
///
/// Public so the benchmark harness can replay the exact production
/// decomposition through its scheduling simulator.
pub fn chunk_range_units(table: &Table, granularity: StealGranularity) -> Vec<ChunkRange> {
    let mut units = Vec::with_capacity(table.num_segments());
    for segment in 0..table.num_segments() {
        let chunks = table.segment(segment).chunks().len();
        let per_unit = match granularity {
            StealGranularity::Segment => chunks.max(1),
            StealGranularity::ChunkRange => CHUNKS_PER_UNIT,
        };
        let mut chunk_lo = 0;
        loop {
            let chunk_hi = (chunk_lo + per_unit).min(chunks);
            units.push(ChunkRange {
                segment,
                chunk_lo,
                chunk_hi,
            });
            chunk_lo = chunk_hi;
            if chunk_lo >= chunks {
                break;
            }
        }
    }
    units
}

/// Runs `work` once per [`ChunkRange`] unit of `table` — on work-stealing
/// parallel workers when `parallel` is set — and folds each segment's
/// per-unit results with `merge` **in range order**, returning one result
/// per segment in segment order.
///
/// With [`StealGranularity::Segment`] every segment is a single unit, `merge`
/// is never called, and this is exactly [`run_per_segment`].  With
/// [`StealGranularity::ChunkRange`] a hot segment's chunks spread across all
/// workers; `merge` must combine two adjacent ranges' results into the
/// earlier range's (e.g. [`crate::aggregate::Aggregate::merge`], or
/// concatenation for order-preserving collectors).  Because the unit
/// decomposition ([`chunk_range_units`]) and the merge order are functions
/// of the table alone, the per-segment results are identical no matter how
/// many workers ran or which worker claimed which unit.
///
/// When several units of one segment fail, the earliest failing range's
/// error (panics included, as [`EngineError::WorkerPanicked`]) is the
/// segment's result — matching the error the serial whole-segment scan
/// would have surfaced first.
pub fn run_per_segment_ranged<T, F, M>(
    table: &Table,
    parallel: bool,
    granularity: StealGranularity,
    work: F,
    merge: M,
) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(ChunkRange, &Segment) -> Result<T> + Sync,
    M: Fn(T, T) -> T,
{
    let units = chunk_range_units(table, granularity);
    let workers = if parallel {
        worker_count().min(units.len())
    } else {
        1
    };
    run_units_with_workers(table, units, workers, work, merge)
}

/// The shared core of [`run_per_segment`] and [`run_per_segment_ranged`]:
/// schedules `units` over `workers` stealing workers (or the calling thread)
/// and folds per-unit results into per-segment results in range order.
fn run_units_with_workers<T, F, M>(
    table: &Table,
    units: Vec<ChunkRange>,
    workers: usize,
    work: F,
    merge: M,
) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(ChunkRange, &Segment) -> Result<T> + Sync,
    M: Fn(T, T) -> T,
{
    let num_units = units.len();
    let run_caught = |unit: ChunkRange| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            work(unit, table.segment(unit.segment))
        }))
        .unwrap_or_else(|payload| Err(worker_panic_error(payload.as_ref())))
    };
    let mut unit_results: Vec<Option<Result<T>>> = (0..num_units).map(|_| None).collect();
    if workers <= 1 {
        for (slot, &unit) in unit_results.iter_mut().zip(&units) {
            *slot = Some(run_caught(unit));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let run_caught = &run_caught;
            let cursor = &cursor;
            let units = &units;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            // Work stealing: claim the next unclaimed unit.
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= num_units {
                                break;
                            }
                            done.push((idx, run_caught(units[idx])));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                // Workers catch panics per unit, so joins cannot fail.
                for (idx, result) in handle.join().expect("worker catches its panics") {
                    unit_results[idx] = Some(result);
                }
            }
        });
    }
    // Fold per-unit results into per-segment results.  Units are in
    // (segment, chunk_lo) order, so iterating unit slots in order merges
    // each segment's ranges left-to-right — the deterministic range-order
    // merge the bit-identity guarantees rest on.
    let mut results: Vec<Option<Result<T>>> = (0..table.num_segments()).map(|_| None).collect();
    for (&unit, result) in units.iter().zip(unit_results) {
        let result = result.expect("the cursor hands every unit to exactly one worker");
        let slot = &mut results[unit.segment];
        *slot = Some(match slot.take() {
            None => result,
            Some(Ok(prev)) => result.map(|next| merge(prev, next)),
            // Keep the earliest range's error for the segment.
            Some(err @ Err(_)) => err,
        });
    }
    results
        .into_iter()
        .map(|slot| slot.expect("every segment decomposes into at least one unit"))
        .collect()
}

/// Runs `work` once per owned item — on work-stealing parallel workers when
/// `parallel` is set and there is more than one item — returning the results
/// in item order.  This is the owned-input sibling of [`run_per_segment`],
/// used to parallelize per-group *compute* (finalizing merged group states,
/// fitting gathered per-group tables) across the same worker pool as the
/// scan itself.
///
/// `work`'s return value is wrapped in the outer [`Result`] only to carry
/// [`EngineError::WorkerPanicked`]: a panic in `work` is captured and
/// surfaced in that item's slot while the remaining items still run.  Use a
/// nested `Result` as `T` for fallible work.
pub fn run_per_item<I, T, F>(items: Vec<I>, parallel: bool, work: F) -> Vec<Result<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    run_per_item_with_scratch(items, parallel, || (), |idx, item, ()| work(idx, item))
}

/// [`run_per_item`] with a per-worker scratch value: `make_scratch` runs
/// once per worker thread and the resulting scratch is threaded through
/// every item that worker claims.  This is how per-group finalize reuses
/// one decomposition workspace across all the groups a worker processes
/// instead of allocating per group.
///
/// Item order, panic capture and the serial (`parallel == false` or one
/// worker) fallback behave exactly as in [`run_per_item`]; the scratch is an
/// optimization handle, never observable in the results.
pub fn run_per_item_with_scratch<I, T, W, M, F>(
    items: Vec<I>,
    parallel: bool,
    make_scratch: M,
    work: F,
) -> Vec<Result<T>>
where
    I: Send,
    T: Send,
    M: Fn() -> W + Sync,
    F: Fn(usize, I, &mut W) -> T + Sync,
{
    let workers = if parallel {
        worker_count().min(items.len())
    } else {
        1
    };
    run_per_item_with_workers(items, workers, make_scratch, work)
}

/// [`run_per_item_with_scratch`] with an explicit worker count, so tests can
/// force the multi-worker stealing path regardless of host core count.
fn run_per_item_with_workers<I, T, W, M, F>(
    items: Vec<I>,
    workers: usize,
    make_scratch: M,
    work: F,
) -> Vec<Result<T>>
where
    I: Send,
    T: Send,
    M: Fn() -> W + Sync,
    F: Fn(usize, I, &mut W) -> T + Sync,
{
    let num_items = items.len();
    let run_caught = |idx: usize, item: I, scratch: &mut W| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(idx, item, scratch)))
            .map_err(|payload| worker_panic_error(payload.as_ref()))
    };
    if workers <= 1 {
        let mut scratch = make_scratch();
        return items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| run_caught(idx, item, &mut scratch))
            .collect();
    }
    // Owned items are parked in take-once slots (the crate forbids unsafe
    // code, so no raw parallel moves); the Mutex is uncontended — the atomic
    // cursor hands each slot to exactly one worker.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let mut results: Vec<Option<Result<T>>> = (0..num_items).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let run_caught = &run_caught;
        let make_scratch = &make_scratch;
        let slots = &slots;
        let cursor = &cursor;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut scratch = make_scratch();
                    let mut done = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= num_items {
                            break;
                        }
                        let item = slots[idx]
                            .lock()
                            .expect("item slot mutex cannot be poisoned")
                            .take()
                            .expect("the cursor hands every item to exactly one worker");
                        done.push((idx, run_caught(idx, item, &mut scratch)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // Workers catch panics per item, so joins cannot fail.
            for (idx, result) in handle.join().expect("worker catches its panics") {
                results[idx] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("the cursor hands every item to exactly one worker"))
        .collect()
}

/// Extracts a human-readable message from a panic payload.
fn worker_panic_error(payload: &(dyn std::any::Any + Send)) -> EngineError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic payload of unknown type".to_owned());
    EngineError::WorkerPanicked { message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn make_table(segments: usize, rows: usize) -> Table {
        let schema = Schema::new(vec![Column::new("y", ColumnType::Double)]);
        let mut t = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        for i in 0..rows {
            t.insert(row![i as f64]).unwrap();
        }
        t
    }

    #[test]
    fn chunked_scan_counts_and_filters() {
        let t = make_table(1, 50);
        let pred = Predicate::column_gt("y", 24.5);
        let mut seen = 0u64;
        let stats = scan_segment_chunks(t.segment(0), t.schema(), Some(&pred), |batch| {
            seen += batch.chunk().len() as u64;
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.rows_scanned, 50);
        assert_eq!(stats.rows_passed, 25);
        assert_eq!(seen, 25);
    }

    #[test]
    fn row_scan_matches_chunked_counters() {
        let t = make_table(1, 37);
        let pred = Predicate::column_lt("y", 10.0);
        let chunked =
            scan_segment_chunks(t.segment(0), t.schema(), Some(&pred), |_| Ok(())).unwrap();
        let by_rows = scan_segment_rows(t.segment(0), t.schema(), Some(&pred), |_| Ok(())).unwrap();
        assert_eq!(chunked, by_rows);
    }

    #[test]
    fn per_segment_fanout_preserves_order() {
        let t = make_table(4, 40);
        let results = run_per_segment(&t, true, |seg, segment| Ok((seg, segment.len())));
        let collected: Vec<(usize, usize)> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 4);
        for (i, (seg, len)) in collected.iter().enumerate() {
            assert_eq!(*seg, i);
            assert_eq!(*len, 10);
        }
    }

    #[test]
    fn worker_panics_become_errors() {
        let t = make_table(3, 9);
        for parallel in [true, false] {
            let results: Vec<Result<()>> = run_per_segment(&t, parallel, |seg, _| {
                if seg == 1 {
                    panic!("boom in segment {seg}");
                }
                Ok(())
            });
            assert!(results[0].is_ok());
            assert!(results[2].is_ok());
            match &results[1] {
                Err(EngineError::WorkerPanicked { message }) => {
                    assert!(message.contains("boom"), "unexpected message: {message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    /// Builds a table with explicitly skewed per-segment row counts (segments
    /// may be empty) by inserting straight into each segment.
    fn make_skewed_table(segment_rows: &[usize]) -> Table {
        let schema = Schema::new(vec![Column::new("y", ColumnType::Double)]);
        let mut t = Table::new(schema, segment_rows.len())
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        let mut next = 0.0;
        for (seg, &rows) in segment_rows.iter().enumerate() {
            for _ in 0..rows {
                t.insert_into_segment(seg, row![next]).unwrap();
                next += 1.0;
            }
        }
        t
    }

    /// Property: on skewed segment sizes (including empty segments), the
    /// work-stealing scheduler produces exactly the serial loop's output,
    /// for every worker count from 1 to segments + 2.
    #[test]
    fn stealing_matches_serial_on_skewed_segments() {
        let shapes: [&[usize]; 5] = [
            &[100, 0, 1, 0, 3, 57, 0, 2],
            &[0, 0, 0, 0],
            &[97],
            &[1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1],
            &[0, 200, 0, 0, 0, 0, 0, 5],
        ];
        for shape in shapes {
            let t = make_skewed_table(shape);
            let work = |seg: usize, segment: &Segment| {
                let mut sum = 0.0f64;
                scan_segment_rows(segment, t.schema(), None, |row| {
                    sum += row.get(0).as_double()?;
                    Ok(())
                })?;
                Ok((seg, segment.len(), sum.to_bits()))
            };
            let serial: Vec<_> = run_per_segment_with_workers(&t, 1, work)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            for workers in 2..=shape.len() + 2 {
                let stolen: Vec<_> = run_per_segment_with_workers(&t, workers, work)
                    .into_iter()
                    .map(|r| r.unwrap())
                    .collect();
                assert_eq!(stolen, serial, "workers={workers} shape={shape:?}");
            }
        }
    }

    /// Regression: a panicking worker under multi-worker stealing surfaces as
    /// a typed `WorkerPanicked` error in that segment's slot — no hang, and
    /// the other segments still complete.
    #[test]
    fn stealing_surfaces_worker_panics() {
        let t = make_skewed_table(&[5, 0, 40, 2, 0, 9]);
        for workers in [2, 3, 6] {
            let results: Vec<Result<usize>> =
                run_per_segment_with_workers(&t, workers, |seg, s| {
                    if seg == 2 {
                        panic!("stolen boom");
                    }
                    Ok(s.len())
                });
            for (seg, result) in results.iter().enumerate() {
                if seg == 2 {
                    match result {
                        Err(EngineError::WorkerPanicked { message }) => {
                            assert!(message.contains("stolen boom"));
                        }
                        other => panic!("expected WorkerPanicked, got {other:?}"),
                    }
                } else {
                    assert!(result.is_ok(), "segment {seg} should succeed");
                }
            }
        }
    }

    #[test]
    fn per_item_pool_preserves_order_and_scratch() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [1, 2, 5, 40] {
            let results = run_per_item_with_workers(
                items.clone(),
                workers,
                || 0u64,
                |idx, item, calls| {
                    *calls += 1;
                    item * 10 + idx as u64
                },
            );
            let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
            let want: Vec<u64> = items.iter().map(|&i| i * 10 + i).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn per_item_pool_surfaces_panics() {
        let items: Vec<usize> = (0..10).collect();
        let results = run_per_item_with_workers(
            items,
            3,
            || (),
            |_, item, ()| {
                if item == 4 {
                    panic!("item boom");
                }
                item
            },
        );
        for (idx, result) in results.iter().enumerate() {
            if idx == 4 {
                match result {
                    Err(EngineError::WorkerPanicked { message }) => {
                        assert!(message.contains("item boom"));
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
            } else {
                assert_eq!(*result.as_ref().unwrap(), idx);
            }
        }
    }

    #[test]
    fn worker_count_respects_env_override() {
        assert_eq!(worker_count_from(Some("6")), (6, None));
        assert_eq!(worker_count_from(Some(" 3 ")), (3, None));
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Unset is the documented default, not an error: no warning.
        assert_eq!(worker_count_from(None), (fallback, None));
        // Invalid overrides fall back *and* warn — a typo'd pin on a
        // benchmark host must be loud.
        for raw in ["0", "", "lots", "-2", "1.5"] {
            let (workers, warning) = worker_count_from(Some(raw));
            assert_eq!(workers, fallback, "raw={raw:?}");
            let warning = warning.unwrap_or_else(|| panic!("raw={raw:?} should warn"));
            assert!(warning.contains("MADLIB_THREADS"), "warning: {warning}");
        }
    }

    /// The unit decomposition is a pure function of the table: every segment
    /// yields at least one unit, units are in (segment, chunk_lo) order,
    /// cover each segment's chunks exactly, and never exceed
    /// `CHUNKS_PER_UNIT` chunks at chunk-range granularity.
    #[test]
    fn chunk_range_units_cover_segments_deterministically() {
        let t = make_skewed_table(&[100, 0, 1, 0, 3, 57, 0, 2]);
        for granularity in [StealGranularity::Segment, StealGranularity::ChunkRange] {
            let units = chunk_range_units(&t, granularity);
            assert_eq!(units, chunk_range_units(&t, granularity));
            let mut next_lo = vec![0usize; t.num_segments()];
            let mut seen_segments = Vec::new();
            for unit in &units {
                assert_eq!(unit.chunk_lo, next_lo[unit.segment], "gap in {unit:?}");
                assert!(unit.chunk_hi >= unit.chunk_lo);
                if granularity == StealGranularity::ChunkRange {
                    assert!(unit.chunk_hi - unit.chunk_lo <= CHUNKS_PER_UNIT);
                }
                next_lo[unit.segment] = unit.chunk_hi;
                if seen_segments.last() != Some(&unit.segment) {
                    seen_segments.push(unit.segment);
                }
            }
            assert_eq!(seen_segments, (0..t.num_segments()).collect::<Vec<_>>());
            for (seg, &lo) in next_lo.iter().enumerate() {
                assert_eq!(lo, t.segment(seg).chunks().len());
            }
        }
        // The hot segment (100 rows, chunk capacity 8 → 13 chunks) splits
        // into multiple steal-able units.
        let ranged = chunk_range_units(&t, StealGranularity::ChunkRange);
        assert!(
            ranged.iter().filter(|u| u.segment == 0).count() > 1,
            "hot segment should decompose into several units: {ranged:?}"
        );
    }

    /// Property: chunk-range stealing produces the same per-segment results
    /// as the whole-segment serial scan for exact (integer-valued) sums, on
    /// skewed and empty-segment tables, for every worker count.  Row counts
    /// are integers, so every partial sum is exact and the range-order merge
    /// is bit-identical to the sequential fold.
    #[test]
    fn chunk_range_stealing_matches_whole_segment_scan() {
        let shapes: [&[usize]; 4] = [
            &[100, 0, 1, 0, 3, 57, 0, 2],
            &[0, 0, 0, 0],
            &[200],
            &[0, 97, 0, 0, 0, 0, 0, 5],
        ];
        for shape in shapes {
            let t = make_skewed_table(shape);
            let whole: Vec<(u64, u64, u64)> = run_per_segment(&t, false, |_, segment| {
                let mut rows = 0u64;
                let mut sum = 0.0f64;
                scan_segment_chunks(segment, t.schema(), None, |batch| {
                    rows += batch.chunk().len() as u64;
                    for v in batch.chunk().doubles(0)?.values {
                        sum += v;
                    }
                    Ok(())
                })?;
                Ok((rows, sum.to_bits(), 1))
            })
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
            let work = |range: ChunkRange, segment: &Segment| {
                let mut rows = 0u64;
                let mut sum = 0.0f64;
                scan_chunks(range.chunks(segment), t.schema(), None, |batch| {
                    rows += batch.chunk().len() as u64;
                    for v in batch.chunk().doubles(0)?.values {
                        sum += v;
                    }
                    Ok(())
                })?;
                Ok((rows, sum.to_bits(), 1))
            };
            let merge = |a: (u64, u64, u64), b: (u64, u64, u64)| {
                let merged = f64::from_bits(a.1) + f64::from_bits(b.1);
                (a.0 + b.0, merged.to_bits(), a.2 + b.2)
            };
            let units = chunk_range_units(&t, StealGranularity::ChunkRange);
            for workers in 1..=units.len() + 2 {
                let ranged: Vec<(u64, u64, u64)> =
                    run_units_with_workers(&t, units.clone(), workers, work, merge)
                        .into_iter()
                        .map(|r| r.unwrap())
                        .collect();
                assert_eq!(ranged.len(), whole.len(), "shape={shape:?}");
                for (seg, (r, w)) in ranged.iter().zip(&whole).enumerate() {
                    assert_eq!(r.0, w.0, "rows differ: seg={seg} workers={workers}");
                    assert_eq!(
                        r.1, w.1,
                        "sum bits differ: seg={seg} workers={workers} shape={shape:?}"
                    );
                    // The merge count tells us how many units actually ran.
                    assert!(r.2 >= w.2);
                }
            }
        }
    }

    /// A panic in one chunk-range unit surfaces as that *segment's*
    /// `WorkerPanicked` error while other segments complete, and the
    /// earliest failing range wins when several fail.
    #[test]
    fn chunk_range_panics_surface_per_segment() {
        let t = make_skewed_table(&[60, 5, 40]);
        let units = chunk_range_units(&t, StealGranularity::ChunkRange);
        for workers in [1, 2, 4] {
            let results: Vec<Result<usize>> = run_units_with_workers(
                &t,
                units.clone(),
                workers,
                |range, _| {
                    if range.segment == 2 && range.chunk_lo > 0 {
                        panic!("range boom at chunk {}", range.chunk_lo);
                    }
                    Ok(1)
                },
                |a, b| a + b,
            );
            assert!(results[0].is_ok());
            assert!(results[1].is_ok());
            match &results[2] {
                Err(EngineError::WorkerPanicked { message }) => {
                    // Earliest failing range (first unit past chunk 0).
                    assert!(
                        message.contains(&format!("range boom at chunk {CHUNKS_PER_UNIT}")),
                        "unexpected message: {message}"
                    );
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }
}
