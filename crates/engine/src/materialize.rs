//! Materialized aggregate state: incremental view maintenance for algebraic
//! aggregates.
//!
//! The paper's macro-programming pattern requires every aggregate to be
//! *algebraic* — `transition` folds rows into a state, `merge` combines
//! partial states, `final` extracts the output.  That same property makes
//! models maintainable under appends without rescanning history: keep the
//! partial transition states around, fold only the **new** rows in, and
//! re-run the (cheap) merge + finalize.  This module is that machinery.
//!
//! A [`MaterializedAggregate`] holds, per table segment, the partial states
//! of an aggregate together with a **chunk watermark**: how many chunks (and
//! how many rows of the open tail chunk) have already been absorbed.
//! [`MaterializedAggregate::absorb`] advances the watermark by running
//! [`Aggregate::transition_chunk`] on the rows past it — O(appended rows),
//! not O(table) — and [`MaterializedAggregate::finalize`] re-runs merge +
//! finalize over the retained states.
//!
//! # Bit-identity with the batch path
//!
//! The absorbed states reproduce the executor's batch scan **bit-for-bit**,
//! which rests on three invariants:
//!
//! 1. `transition_chunk` is bit-identical to sequential per-row
//!    `transition` (the engine-wide override contract).  Splitting a chunk
//!    at any row boundary and transitioning the pieces sequentially is
//!    therefore bit-identical to one whole-chunk call — so absorbing a
//!    then-open tail chunk in several installments matches the batch scan
//!    that sees it sealed.
//! 2. The per-segment unit decomposition mirrors
//!    [`scan::chunk_range_units`]: one state per segment at
//!    [`StealGranularity::Segment`] (the default), one state per
//!    [`scan::CHUNKS_PER_UNIT`]-chunk run at
//!    [`StealGranularity::ChunkRange`].  Unit boundaries are aligned from
//!    chunk 0 and never move under append — only the last unit grows.
//! 3. Finalize replays the executor's exact merge structure: per segment,
//!    unit states fold left-to-right in range order; the per-segment states
//!    then fold left-to-right in segment order (grouped states fold flat per
//!    key in (segment, unit, first-appearance) order, matching the grouped
//!    coordinator), and empty segments contribute `initial_state()` exactly
//!    where the batch scan does.
//!
//! One requirement is **not** checkable here and is part of the contract for
//! aggregates used incrementally: `merge(state, initial_state())` must be
//! bit-identical to `state` (merge-identity).  The batch scan folds an
//! `initial_state()` in for segments that were empty at scan time; the
//! incremental path folds one in for segments that were empty at *view
//! creation* time even after rows later arrive there.  All built-in
//! aggregates satisfy this (their merges short-circuit on empty states or
//! add zeros).
//!
//! # Mutation model
//!
//! Views track **appends**.  A shrinking source segment (truncate,
//! [`crate::Database::replace_table`] with fewer rows) is detected through
//! the watermark and triggers a from-scratch rebuild of that segment's
//! states; an in-place rewrite that keeps row counts identical is *not*
//! detectable — drop and recreate the view around such mutations.

use crate::aggregate::Aggregate;
use crate::chunk::{RowChunk, Segment};
use crate::error::{EngineError, Result};
use crate::executor::{ExecutionMode, Executor};
use crate::expr::Predicate;
use crate::group::{self, GroupKey};
use crate::scan::{self, StealGranularity};
use crate::schema::Schema;
use crate::table::Table;
use std::any::Any;
use std::collections::HashMap;

/// Type-erased handle to a [`MaterializedAggregate`], so the
/// [`crate::Database`] view registry can hold views of heterogeneous
/// aggregate types.  Downcast through [`AnyMaterialized::as_any_mut`] to
/// finalize.
pub trait AnyMaterialized: Send {
    /// Absorbs all rows of `table` past the watermark.
    ///
    /// # Errors
    /// Propagates transition and predicate errors.
    fn absorb(&mut self, table: &Table) -> Result<()>;

    /// Flags the view so its next absorb rebuilds from scratch instead of
    /// trusting the retained states.  [`crate::Database`] sets this after a
    /// failed absorb, whose partial transitions may have left states
    /// inconsistent with the watermark.
    fn mark_needs_rebuild(&mut self);

    /// The concrete [`MaterializedAggregate`], for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// The concrete [`MaterializedAggregate`], mutable, for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// One unit's partial state: a single state for ungrouped views, per-key
/// states in first-appearance order for grouped views.
#[derive(Debug, Clone)]
enum UnitStates<S> {
    Single(S),
    Grouped(Vec<(GroupKey, S)>),
}

/// Per-segment partial states plus the segment's chunk watermark.
#[derive(Debug, Clone)]
struct SegmentStates<S> {
    /// One entry per steal unit, aligned with [`scan::chunk_range_units`].
    units: Vec<UnitStates<S>>,
    /// Chunks `0..absorbed_chunks` are fully absorbed.
    absorbed_chunks: usize,
    /// Rows of chunk `absorbed_chunks` already absorbed (the open-tail
    /// partial watermark; `0` when that chunk is untouched).
    tail_rows: usize,
}

impl<S> SegmentStates<S> {
    fn new() -> Self {
        Self {
            units: Vec::new(),
            absorbed_chunks: 0,
            tail_rows: 0,
        }
    }
}

/// Incrementally maintained partial aggregate state over one table — see the
/// module docs for the maintenance and bit-identity story.
///
/// The view is configured like a [`crate::Dataset`] terminal: an optional
/// filter and optional grouping columns, plus the [`Executor`] whose scan
/// structure (execution mode, steal granularity) the retained states must
/// mirror.
pub struct MaterializedAggregate<A: Aggregate> {
    aggregate: A,
    filter: Option<Predicate>,
    group_columns: Vec<String>,
    /// Chunks per retained state unit; `usize::MAX` collapses every chunk of
    /// a segment into one unit (whole-segment granularity).
    chunks_per_unit: usize,
    segments: Vec<SegmentStates<A::State>>,
    /// Lifecycle generation of the table incarnation the watermarks
    /// describe ([`Table::generation`]); a mismatch on absorb proves the
    /// source was dropped/recreated, replaced or truncated, and forces a
    /// rebuild even when the new incarnation has at least as many chunks.
    source_generation: Option<u64>,
    /// Set when a failed absorb may have left states inconsistent with the
    /// watermark; the next absorb rebuilds from scratch.
    needs_rebuild: bool,
}

impl<A: Aggregate> std::fmt::Debug for MaterializedAggregate<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaterializedAggregate")
            .field("group_columns", &self.group_columns)
            .field("chunks_per_unit", &self.chunks_per_unit)
            .field("segments", &self.segments.len())
            .finish_non_exhaustive()
    }
}

impl<A> MaterializedAggregate<A>
where
    A: Aggregate,
    A::State: Clone,
{
    /// Creates an empty ungrouped, unfiltered view whose retained state
    /// structure mirrors `executor`'s scan decomposition.
    pub fn new(aggregate: A, executor: &Executor) -> Self {
        // Mirror `Executor::effective_granularity`: chunk-range stealing
        // only exists on the chunked path.
        let chunks_per_unit = match (executor.mode(), executor.steal_granularity()) {
            (ExecutionMode::Chunked, StealGranularity::ChunkRange) => scan::CHUNKS_PER_UNIT,
            _ => usize::MAX,
        };
        Self {
            aggregate,
            filter: None,
            group_columns: Vec::new(),
            chunks_per_unit,
            segments: Vec::new(),
            source_generation: None,
            needs_rebuild: false,
        }
    }

    /// Restricts the view to rows matching `filter` (the dataset's `WHERE`).
    #[must_use]
    pub fn with_filter(mut self, filter: Predicate) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Maintains one state per distinct key of `columns` (the dataset's
    /// `grouping_cols`).
    #[must_use]
    pub fn with_group_columns<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.group_columns = columns.into_iter().map(Into::into).collect();
        self
    }

    /// The aggregate the view maintains.
    pub fn aggregate(&self) -> &A {
        &self.aggregate
    }

    /// Whether the view maintains per-group states.
    pub fn is_grouped(&self) -> bool {
        !self.group_columns.is_empty()
    }

    /// Whether the next absorb will rebuild from scratch (a failed absorb
    /// marked the retained states untrustworthy).
    pub fn needs_rebuild(&self) -> bool {
        self.needs_rebuild
    }

    /// Absorbs every row of `table` past the per-segment watermarks —
    /// O(new rows).  Safe to call repeatedly and after arbitrary appends; a
    /// segment that shrank since the last absorb is rebuilt from scratch.
    ///
    /// # Errors
    /// Propagates transition, predicate and column-lookup errors.
    pub fn absorb(&mut self, table: &Table) -> Result<()> {
        let schema = table.schema();
        let group_indices: Vec<usize> = self
            .group_columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        let generation = table.generation();
        if self.needs_rebuild || self.source_generation != Some(generation) {
            // A different table incarnation (drop/recreate, replace,
            // truncate — possibly with *more* chunks than the watermark, so
            // shrink detection alone would wrongly absorb its suffix), or a
            // previous absorb failed mid-transition: start over.
            self.segments.clear();
            self.needs_rebuild = false;
            self.source_generation = Some(generation);
        }
        if self.segments.len() != table.num_segments() {
            // Repartitioned (or first absorb): start over.
            self.segments = (0..table.num_segments())
                .map(|_| SegmentStates::new())
                .collect();
        }
        for seg in 0..table.num_segments() {
            if let Err(e) = self.absorb_segment(seg, table.segment(seg), schema, &group_indices) {
                // The failed transition may have folded some rows in without
                // advancing the watermark; only a rebuild is safe now.
                self.needs_rebuild = true;
                return Err(e);
            }
        }
        Ok(())
    }

    fn absorb_segment(
        &mut self,
        seg: usize,
        segment: &Segment,
        schema: &Schema,
        group_indices: &[usize],
    ) -> Result<()> {
        let chunks = segment.chunks();
        let shrank = {
            let st = &self.segments[seg];
            st.absorbed_chunks > chunks.len()
                || (st.tail_rows > 0
                    && (st.absorbed_chunks >= chunks.len()
                        || chunks[st.absorbed_chunks].len() < st.tail_rows))
        };
        if shrank {
            self.segments[seg] = SegmentStates::new();
        }

        // Partial-tail catch-up: the last absorb stopped mid-chunk.
        let st = &self.segments[seg];
        let (mut next_chunk, tail_rows) = (st.absorbed_chunks, st.tail_rows);
        if tail_rows > 0 {
            let chunk = &chunks[next_chunk];
            if chunk.len() > tail_rows {
                let indices: Vec<u32> = (tail_rows as u32..chunk.len() as u32).collect();
                let suffix = chunk.gather_rows(&indices);
                self.absorb_piece(seg, next_chunk, &suffix, schema, group_indices)?;
            }
            // Advance past the chunk only once a successor proves it sealed.
            if next_chunk + 1 < chunks.len() {
                next_chunk += 1;
                self.segments[seg].absorbed_chunks = next_chunk;
                self.segments[seg].tail_rows = 0;
            } else {
                self.segments[seg].tail_rows = chunk.len();
                return Ok(());
            }
        }

        // Whole-chunk loop from the watermark to the end of the segment.
        while next_chunk < chunks.len() {
            let chunk = std::sync::Arc::clone(&chunks[next_chunk]);
            self.absorb_piece(seg, next_chunk, &chunk, schema, group_indices)?;
            if next_chunk + 1 < chunks.len() {
                next_chunk += 1;
                self.segments[seg].absorbed_chunks = next_chunk;
            } else {
                // Open tail (even if currently at capacity — it is only
                // provably sealed once a successor chunk exists).
                self.segments[seg].tail_rows = chunk.len();
                break;
            }
        }
        Ok(())
    }

    /// Folds one piece (a whole chunk, or the gathered suffix of the open
    /// tail chunk) of segment `seg`'s chunk `chunk_idx` into the owning
    /// unit's state, applying the view's filter exactly as
    /// [`scan::scan_chunks`] does.
    fn absorb_piece(
        &mut self,
        seg: usize,
        chunk_idx: usize,
        piece: &RowChunk,
        schema: &Schema,
        group_indices: &[usize],
    ) -> Result<()> {
        let unit = chunk_idx / self.chunks_per_unit;
        {
            let st = &mut self.segments[seg];
            while st.units.len() <= unit {
                st.units.push(if group_indices.is_empty() {
                    UnitStates::Single(self.aggregate.initial_state())
                } else {
                    UnitStates::Grouped(Vec::new())
                });
            }
        }
        if piece.is_empty() {
            return Ok(());
        }
        // Mirror the scan's filter handling: one mask per piece, pass-through
        // when fully selected, gather-compact when partially selected.
        let compacted;
        let batch: &RowChunk = match &self.filter {
            None => piece,
            Some(predicate) => {
                let mask = predicate.evaluate_chunk(piece, schema)?;
                let selected = mask.count_selected();
                if selected == 0 {
                    return Ok(());
                }
                if selected == piece.len() {
                    piece
                } else {
                    compacted = piece.gather(&mask);
                    &compacted
                }
            }
        };
        let unit_states = &mut self.segments[seg].units[unit];
        match unit_states {
            UnitStates::Single(state) => self.aggregate.transition_chunk(state, batch, schema),
            UnitStates::Grouped(states) => {
                for part in group::partition_by_group(batch, group_indices) {
                    let slot = match states.iter().position(|(k, _)| *k == part.key) {
                        Some(slot) => slot,
                        None => {
                            states.push((part.key.clone(), self.aggregate.initial_state()));
                            states.len() - 1
                        }
                    };
                    if part.rows == batch.len() {
                        self.aggregate
                            .transition_chunk(&mut states[slot].1, batch, schema)?;
                    } else {
                        let sub = batch.gather(&part.mask);
                        self.aggregate
                            .transition_chunk(&mut states[slot].1, &sub, schema)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Merges the retained states and finalizes — the cheap, O(states)
    /// refresh step.  Requires an ungrouped view.
    ///
    /// # Errors
    /// Propagates merge/finalize errors; errors on a grouped view.
    pub fn finalize(&self) -> Result<A::Output> {
        if self.is_grouped() {
            return Err(EngineError::invalid(
                "finalize on a grouped materialized aggregate; use finalize_grouped",
            ));
        }
        // Replay the executor's merge structure exactly: fold each segment's
        // unit states in range order, then fold the per-segment states in
        // segment order.
        let mut merged: Option<A::State> = None;
        for seg in &self.segments {
            let mut seg_state: Option<A::State> = None;
            for unit in &seg.units {
                let state = match unit {
                    UnitStates::Single(s) => s.clone(),
                    UnitStates::Grouped(_) => unreachable!("ungrouped view"),
                };
                seg_state = Some(match seg_state {
                    None => state,
                    Some(prev) => self.aggregate.merge(prev, state),
                });
            }
            let state = seg_state.unwrap_or_else(|| self.aggregate.initial_state());
            merged = Some(match merged {
                None => state,
                Some(prev) => self.aggregate.merge(prev, state),
            });
        }
        let state = merged.unwrap_or_else(|| self.aggregate.initial_state());
        self.aggregate.finalize(state)
    }

    /// Merges the retained per-group states and finalizes each group,
    /// returning outputs sorted by key (matching
    /// [`crate::Dataset::aggregate_per_group`]).  Requires a grouped view.
    ///
    /// # Errors
    /// Propagates merge/finalize errors; errors on an ungrouped view.
    pub fn finalize_grouped(&self) -> Result<Vec<(GroupKey, A::Output)>> {
        if !self.is_grouped() {
            return Err(EngineError::invalid(
                "finalize_grouped on an ungrouped materialized aggregate; use finalize",
            ));
        }
        // Per key, states merge flat left-to-right in (segment, unit,
        // first-appearance) order — the grouped coordinator's fold.
        let mut merged: HashMap<GroupKey, A::State> = HashMap::new();
        for seg in &self.segments {
            for unit in &seg.units {
                let states = match unit {
                    UnitStates::Grouped(states) => states,
                    UnitStates::Single(_) => unreachable!("grouped view"),
                };
                for (key, state) in states {
                    let combined = match merged.remove(key) {
                        None => state.clone(),
                        Some(prev) => self.aggregate.merge(prev, state.clone()),
                    };
                    merged.insert(key.clone(), combined);
                }
            }
        }
        let mut entries: Vec<(GroupKey, A::State)> = merged.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut scratch = self.aggregate.make_finalize_scratch();
        entries
            .into_iter()
            .map(|(key, state)| {
                self.aggregate
                    .finalize_with(state, &mut scratch)
                    .map(|output| (key, output))
            })
            .collect()
    }
}

impl<A> AnyMaterialized for MaterializedAggregate<A>
where
    A: Aggregate + Send + 'static,
    A::State: Clone + 'static,
{
    fn absorb(&mut self, table: &Table) -> Result<()> {
        MaterializedAggregate::absorb(self, table)
    }

    fn mark_needs_rebuild(&mut self) {
        self.needs_rebuild = true;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AvgAggregate, CountAggregate, SumAggregate};
    use crate::expr::Predicate;
    use crate::row;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("g", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ])
    }

    fn table(rows: usize, segments: usize, chunk_capacity: usize) -> Table {
        let mut t = Table::new(schema(), segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for i in 0..rows {
            t.insert(row![(i % 3) as i64, i as f64]).unwrap();
        }
        t
    }

    /// Incremental absorb across partial tail chunks, chunk seals, filters
    /// and both steal granularities matches the batch scan exactly.
    #[test]
    fn absorb_matches_batch_aggregate() {
        for steal in [StealGranularity::Segment, StealGranularity::ChunkRange] {
            let executor = Executor::new().with_steal_granularity(steal);
            let filter = Predicate::column_gt("v", 2.5);
            let mut t = table(0, 2, 4);
            let mut view = MaterializedAggregate::new(SumAggregate::new("v"), &executor)
                .with_filter(filter.clone());
            view.absorb(&t).unwrap();
            assert_eq!(view.finalize().unwrap(), 0.0);

            // Absorb in uneven installments: 1, 3, 9, 14 rows...
            for (start, end) in [(0, 1), (1, 4), (4, 13), (13, 27)] {
                for i in start..end {
                    t.insert(row![(i % 3) as i64, i as f64]).unwrap();
                }
                view.absorb(&t).unwrap();
                let batch = crate::Dataset::from_table(&t)
                    .with_executor(executor)
                    .filter(filter.clone())
                    .aggregate(&SumAggregate::new("v"))
                    .unwrap();
                assert_eq!(view.finalize().unwrap(), batch);
            }
        }
    }

    /// Grouped views match `aggregate_per_group` (keys sorted, per-key merge
    /// order preserved).
    #[test]
    fn grouped_absorb_matches_batch() {
        let executor = Executor::new();
        let mut t = table(10, 2, 4);
        let mut view =
            MaterializedAggregate::new(AvgAggregate::new("v"), &executor).with_group_columns(["g"]);
        view.absorb(&t).unwrap();
        for i in 10..23 {
            t.insert(row![(i % 3) as i64, i as f64]).unwrap();
        }
        view.absorb(&t).unwrap();
        let batch = crate::Dataset::from_table(&t)
            .with_executor(executor)
            .group_by(["g"])
            .aggregate_per_group(&AvgAggregate::new("v"))
            .unwrap();
        assert_eq!(view.finalize_grouped().unwrap(), batch);
    }

    /// A shrinking segment (truncate) rebuilds instead of double-counting.
    #[test]
    fn truncate_triggers_rebuild() {
        let executor = Executor::new();
        let mut t = table(20, 2, 4);
        let mut view = MaterializedAggregate::new(CountAggregate, &executor);
        view.absorb(&t).unwrap();
        assert_eq!(view.finalize().unwrap(), 20);
        t.truncate();
        for i in 0..7 {
            t.insert(row![0i64, i as f64]).unwrap();
        }
        view.absorb(&t).unwrap();
        assert_eq!(view.finalize().unwrap(), 7);
    }
}
