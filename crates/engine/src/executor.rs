//! Parallel segment executor with chunk-at-a-time (vectorized) scans.
//!
//! Runs user-defined aggregates over a partitioned [`Table`] with one worker
//! per segment, mirroring Greenplum's "one query process per segment"
//! execution model that the paper's Figure 4/5 evaluation sweeps over.
//! The transition function streams over each segment locally; the resulting
//! per-segment states are merged on the coordinating thread; and the final
//! function produces the output.  Only the (small) transition states ever
//! cross segment boundaries — the property the paper credits for its
//! near-linear parallel speedup.
//!
//! Every scan the executor issues — ungrouped aggregation and
//! `parallel_map` projections — runs on the shared [`crate::scan`] pipeline:
//! segments fan out to worker threads ([`crate::scan::run_per_segment`],
//! which converts worker panics into [`EngineError::WorkerPanicked`]), and
//! within a segment chunks stream through
//! [`crate::scan::scan_segment_chunks`] with predicates hoisted to
//! one [`crate::chunk::SelectionMask`] per chunk.
//! [`ExecutionMode::RowAtATime`] swaps the inner loop for the legacy per-row
//! scan; results are identical by contract, and the benchmark harness sweeps
//! both modes to reproduce the paper's Figure 4 "rewrite the inner loop"
//! comparison.
//!
//! Filtered and grouped scans are described with [`crate::dataset::Dataset`]
//! (`db.dataset("t")?.filter(...).group_by([...])`), which dispatches onto
//! the same pipeline.  (The executor's old `aggregate_filtered` /
//! `aggregate_grouped` / `aggregate_grouped_filtered` method matrix was
//! deprecated in favour of `Dataset` and has since been removed.)

use crate::aggregate::Aggregate;
use crate::chunk::Segment;
use crate::dataset::Dataset;
use crate::error::{EngineError, Result};
use crate::expr::Predicate;
use crate::row::Row;
use crate::scan;
use crate::schema::Schema;
use crate::table::Table;

/// Statistics describing one aggregate execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Rows scanned across all segments.
    pub rows_scanned: u64,
    /// Rows that passed the filter (equals `rows_scanned` when no filter).
    pub rows_aggregated: u64,
    /// Number of segment workers used.
    pub segments: usize,
}

/// How the executor scans a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Stream column-major chunks through [`Aggregate::transition_chunk`]
    /// with chunk-level predicate evaluation (default).
    #[default]
    Chunked,
    /// Materialize each row and call [`Aggregate::transition`], evaluating
    /// predicates row by row — the engine's original execution model, kept
    /// for debugging and for measuring the vectorization speedup.
    RowAtATime,
}

/// Executes aggregates over partitioned tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    /// When true (default), segments are processed by parallel worker
    /// threads; when false everything runs on the calling thread, which is
    /// occasionally useful for debugging and for measuring parallel speedup.
    parallel: bool,
    mode: ExecutionMode,
    steal: scan::StealGranularity,
}

impl Executor {
    /// Creates a parallel, chunk-at-a-time executor (one worker per segment).
    pub fn new() -> Self {
        Self {
            parallel: true,
            mode: ExecutionMode::Chunked,
            steal: scan::StealGranularity::Segment,
        }
    }

    /// Creates an executor that processes segments serially on the calling
    /// thread.  The per-segment transition/merge structure is identical, so
    /// results match the parallel path exactly.
    pub fn serial() -> Self {
        Self {
            parallel: false,
            ..Self::new()
        }
    }

    /// Selects the scan mode (chunked by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the work-stealing granularity for aggregate scans
    /// ([`scan::StealGranularity::Segment`] by default).
    ///
    /// [`scan::StealGranularity::ChunkRange`] spreads one hot segment's
    /// chunks across every worker, curing intra-segment skew, at the price
    /// of a different (but still deterministic, worker-count-independent)
    /// floating-point merge structure: per segment, the partial transition
    /// states of each chunk range merge in range order via
    /// [`Aggregate::merge`], which reassociates additions relative to the
    /// whole-segment sequential fold.  Exact-arithmetic aggregates (counts,
    /// integer-valued sums) are bit-identical either way; inexact ones agree
    /// to merge-level rounding.  The granularity only affects the chunked
    /// scan mode — [`ExecutionMode::RowAtATime`] always scans whole
    /// segments.
    pub fn with_steal_granularity(mut self, steal: scan::StealGranularity) -> Self {
        self.steal = steal;
        self
    }

    /// Shorthand for a parallel executor using the legacy per-row scan.
    pub fn row_at_a_time() -> Self {
        Self::new().with_mode(ExecutionMode::RowAtATime)
    }

    /// Whether this executor runs segments in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The scan mode in use.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The work-stealing granularity for aggregate scans.
    pub fn steal_granularity(&self) -> scan::StealGranularity {
        self.steal
    }

    /// The granularity actually used for a scan in `mode`: chunk-range
    /// stealing only exists on the chunked path, so [`ExecutionMode::RowAtATime`]
    /// always degrades to whole-segment units.
    fn effective_granularity(&self, mode: ExecutionMode) -> scan::StealGranularity {
        match mode {
            ExecutionMode::Chunked => self.steal,
            ExecutionMode::RowAtATime => scan::StealGranularity::Segment,
        }
    }

    /// Runs `aggregate` over every row of `table`, returning the finalized
    /// output.
    ///
    /// # Errors
    /// Propagates transition/final errors from the aggregate.
    pub fn aggregate<A: Aggregate>(&self, table: &Table, aggregate: &A) -> Result<A::Output> {
        Ok(self.aggregate_with_stats(table, aggregate, None)?.0)
    }

    /// Runs `aggregate` over the rows of `table` accepted by `filter`,
    /// returning the finalized output together with execution statistics.
    ///
    /// # Errors
    /// Propagates transition/final errors from the aggregate and predicate
    /// evaluation errors from the filter.
    pub fn aggregate_with_stats<A: Aggregate>(
        &self,
        table: &Table,
        aggregate: &A,
        filter: Option<&Predicate>,
    ) -> Result<(A::Output, ExecutionStats)> {
        let schema = table.schema();
        let mode = self.mode;
        let segment_results = scan::run_per_segment_ranged(
            table,
            self.parallel,
            self.effective_granularity(mode),
            |range, segment| {
                Self::run_segment_range(aggregate, segment, range, schema, filter, mode)
            },
            |(left, left_stats), (right, right_stats)| {
                (
                    aggregate.merge(left, right),
                    scan::SegmentScanStats {
                        rows_scanned: left_stats.rows_scanned + right_stats.rows_scanned,
                        rows_passed: left_stats.rows_passed + right_stats.rows_passed,
                    },
                )
            },
        );

        let mut merged: Option<A::State> = None;
        let mut stats = ExecutionStats {
            rows_scanned: 0,
            rows_aggregated: 0,
            segments: table.num_segments(),
        };
        for res in segment_results {
            let (state, seg_stats) = res?;
            stats.rows_scanned += seg_stats.rows_scanned;
            stats.rows_aggregated += seg_stats.rows_passed;
            merged = Some(match merged {
                None => state,
                Some(prev) => aggregate.merge(prev, state),
            });
        }
        let state = merged.unwrap_or_else(|| aggregate.initial_state());
        Ok((aggregate.finalize(state)?, stats))
    }

    fn run_segment_range<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        range: scan::ChunkRange,
        schema: &Schema,
        filter: Option<&Predicate>,
        mode: ExecutionMode,
    ) -> Result<(A::State, scan::SegmentScanStats)> {
        let mut state = aggregate.initial_state();
        let stats = match mode {
            ExecutionMode::Chunked => {
                scan::scan_chunks(range.chunks(segment), schema, filter, |batch| {
                    aggregate.transition_chunk(&mut state, batch.chunk(), schema)
                })?
            }
            // Row-at-a-time scans run at Segment granularity only (see
            // `effective_granularity`), so the range always covers the
            // whole segment here.
            ExecutionMode::RowAtATime => scan::scan_segment_rows(segment, schema, filter, |row| {
                aggregate.transition(&mut state, row, schema)
            })?,
        };
        Ok((state, stats))
    }

    /// Applies `map` to every row in parallel per segment and collects the
    /// outputs (segment order preserved).  This is the engine's equivalent of
    /// a parallel projection / per-row UDF scan — the unfiltered shorthand
    /// for [`Dataset::map_rows`], which supplies the shared fan-out, panic
    /// handling and row-materialization adapter.
    ///
    /// # Errors
    /// Propagates errors returned by `map`.
    pub fn parallel_map<T, F>(&self, table: &Table, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Row, &Schema) -> Result<T> + Sync,
    {
        Dataset::from_table(table)
            .with_executor(*self)
            .map_rows(map)
    }

    /// Chunk-level parallel projection: applies `map` once per column-major
    /// chunk (per segment, in parallel) and concatenates the outputs in
    /// segment-then-row order.  Chunk-aware consumers use this to read whole
    /// column slices (via [`crate::chunk::RowChunk::doubles`] /
    /// [`crate::chunk::RowChunk::double_arrays`]) instead of materialized
    /// rows.  The unfiltered shorthand for [`Dataset::map_chunks`];
    /// [`Executor::parallel_map`] is the row-level adapter on top.
    ///
    /// # Errors
    /// Propagates errors returned by `map`.
    pub fn parallel_map_chunks<T, F>(&self, table: &Table, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&crate::chunk::RowChunk, &Schema) -> Result<Vec<T>> + Sync,
    {
        Dataset::from_table(table)
            .with_executor(*self)
            .map_chunks(map)
    }

    /// Validates that the executor can run against the table (non-empty when
    /// `require_rows` is set).  Utility used by method drivers to produce a
    /// friendlier error than an empty-aggregate failure.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] for an empty table when rows
    /// are required.
    pub fn validate_input(&self, table: &Table, require_rows: bool) -> Result<()> {
        if require_rows && table.is_empty() {
            return Err(EngineError::invalid("input table has no rows"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{ArraySumAggregate, AvgAggregate, CountAggregate, SumAggregate};
    use crate::expr::Predicate;
    use crate::row;
    use crate::schema::{Column, ColumnType, Schema};

    fn make_table(segments: usize, rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for i in 0..rows {
            let grp = if i % 2 == 0 { "even" } else { "odd" };
            t.insert(row![grp, i as f64, vec![i as f64, 1.0]]).unwrap();
        }
        t
    }

    #[test]
    fn parallel_and_serial_agree() {
        let t = make_table(4, 100);
        let parallel = Executor::new();
        let serial = Executor::serial();
        assert!(parallel.is_parallel());
        assert!(!serial.is_parallel());
        let sum_par = parallel.aggregate(&t, &SumAggregate::new("y")).unwrap();
        let sum_ser = serial.aggregate(&t, &SumAggregate::new("y")).unwrap();
        assert_eq!(sum_par, sum_ser);
        assert_eq!(sum_par, (0..100).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn chunked_and_row_modes_agree() {
        // Use a tiny chunk capacity so the scan crosses several chunk
        // boundaries per segment.
        let base = make_table(1, 157);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(16)
            .unwrap();
        t.insert_all(base.iter()).unwrap();

        let chunked = Executor::new();
        let row = Executor::row_at_a_time();
        assert_eq!(chunked.mode(), ExecutionMode::Chunked);
        assert_eq!(row.mode(), ExecutionMode::RowAtATime);

        let a = chunked.aggregate(&t, &SumAggregate::new("y")).unwrap();
        let b = row.aggregate(&t, &SumAggregate::new("y")).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());

        let a = chunked.aggregate(&t, &ArraySumAggregate::new("x")).unwrap();
        let b = row.aggregate(&t, &ArraySumAggregate::new("x")).unwrap();
        assert_eq!(a, b);

        let pred = Predicate::column_gt("y", 31.5).and(Predicate::column_lt("y", 141.0));
        let (ca, cs) = chunked
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        let (ra, rs) = row
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        assert_eq!(ca, ra);
        assert_eq!(cs, rs);
        assert_eq!(cs.rows_scanned, 157);
    }

    #[test]
    fn results_invariant_to_partitioning() {
        let base = make_table(1, 60);
        let expected = Executor::new()
            .aggregate(&base, &ArraySumAggregate::new("x"))
            .unwrap();
        for segs in [2, 3, 5, 8] {
            let t = base.repartition(segs).unwrap();
            let got = Executor::new()
                .aggregate(&t, &ArraySumAggregate::new("x"))
                .unwrap();
            assert_eq!(got, expected, "mismatch at {segs} segments");
        }
    }

    #[test]
    fn filtered_aggregation_and_stats() {
        let t = make_table(3, 10);
        let exec = Executor::new();
        let pred = Predicate::column_gt("y", 4.5);
        let (count, stats) = exec
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        assert_eq!(count, 5); // y in {5..9}
        assert_eq!(stats.rows_scanned, 10);
        assert_eq!(stats.rows_aggregated, 5);
        assert_eq!(stats.segments, 3);
    }

    #[test]
    fn empty_table_aggregates() {
        let t = make_table(2, 0);
        let exec = Executor::new();
        assert_eq!(exec.aggregate(&t, &CountAggregate).unwrap(), 0);
        assert_eq!(exec.aggregate(&t, &AvgAggregate::new("y")).unwrap(), None);
        assert!(exec.aggregate(&t, &ArraySumAggregate::new("x")).is_err());
        assert!(exec.validate_input(&t, true).is_err());
        assert!(exec.validate_input(&t, false).is_ok());
    }

    #[test]
    fn worker_panics_surface_as_errors_not_aborts() {
        struct PanickyAggregate;
        impl Aggregate for PanickyAggregate {
            type State = u64;
            type Output = u64;
            fn initial_state(&self) -> u64 {
                0
            }
            fn transition(&self, _: &mut u64, row: &Row, _: &Schema) -> Result<()> {
                if row.get(1).as_double()? >= 8.0 {
                    panic!("transition exploded");
                }
                Ok(())
            }
            fn merge(&self, left: u64, right: u64) -> u64 {
                left + right
            }
            fn finalize(&self, state: u64) -> Result<u64> {
                Ok(state)
            }
        }

        let t = make_table(4, 32);
        for exec in [
            Executor::row_at_a_time(),
            Executor::serial().with_mode(ExecutionMode::RowAtATime),
        ] {
            let err = exec.aggregate(&t, &PanickyAggregate).unwrap_err();
            match err {
                EngineError::WorkerPanicked { message } => {
                    assert!(message.contains("transition exploded"), "got: {message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }

        // parallel_map workers propagate panics the same way.
        let err = Executor::new()
            .parallel_map(&t, |row, _| -> Result<f64> {
                if row.get(1).as_double()? >= 8.0 {
                    panic!("map exploded");
                }
                Ok(0.0)
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanicked { .. }));
    }

    #[test]
    fn parallel_map_preserves_all_rows() {
        let t = make_table(4, 20);
        let exec = Executor::new();
        let doubled: Vec<f64> = exec
            .parallel_map(&t, |row, schema| {
                Ok(row.get_named(schema, "y")?.as_double()? * 2.0)
            })
            .unwrap();
        assert_eq!(doubled.len(), 20);
        let sum: f64 = doubled.iter().sum();
        assert_eq!(sum, 2.0 * (0..20).map(|i| i as f64).sum::<f64>());
        // Errors propagate.
        let err = exec.parallel_map(&t, |row, schema| {
            row.get_named(schema, "grp")?.as_double().map(|_| ())
        });
        assert!(err.is_err());
    }

    #[test]
    fn parallel_map_chunks_matches_row_level_map() {
        let base = make_table(1, 53);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        t.insert_all(base.iter()).unwrap();
        let exec = Executor::new();
        let by_rows: Vec<f64> = exec
            .parallel_map(&t, |row, schema| {
                Ok(row.get_named(schema, "y")?.as_double()? + 1.0)
            })
            .unwrap();
        let by_chunks: Vec<f64> = exec
            .parallel_map_chunks(&t, |chunk, schema| {
                let idx = schema.index_of("y")?;
                let column = chunk.doubles(idx)?;
                Ok(column.values.iter().map(|v| v + 1.0).collect())
            })
            .unwrap();
        assert_eq!(by_rows, by_chunks);
    }
}
