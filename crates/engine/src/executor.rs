//! Parallel segment executor with chunk-at-a-time (vectorized) scans.
//!
//! Runs user-defined aggregates over a partitioned [`Table`] with one worker
//! per segment, mirroring Greenplum's "one query process per segment"
//! execution model that the paper's Figure 4/5 evaluation sweeps over.
//! The transition function streams over each segment locally; the resulting
//! per-segment states are merged on the coordinating thread; and the final
//! function produces the output.  Only the (small) transition states ever
//! cross segment boundaries — the property the paper credits for its
//! near-linear parallel speedup.
//!
//! Within a segment the default scan is *chunk-at-a-time*: each column-major
//! [`crate::chunk::RowChunk`] is filtered once (predicates become selection
//! bitmasks, hoisted out of the inner loop) and handed to
//! [`Aggregate::transition_chunk`], which either runs a vectorized kernel
//! over contiguous column buffers or falls back to per-row transitions.
//! [`ExecutionMode::RowAtATime`] forces the legacy per-row scan; results are
//! identical by contract, and the benchmark harness sweeps both modes to
//! reproduce the paper's Figure 4 "rewrite the inner loop" comparison.

use crate::aggregate::Aggregate;
use crate::chunk::Segment;
use crate::error::{EngineError, Result};
use crate::expr::Predicate;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;

/// Statistics describing one aggregate execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Rows scanned across all segments.
    pub rows_scanned: u64,
    /// Rows that passed the filter (equals `rows_scanned` when no filter).
    pub rows_aggregated: u64,
    /// Number of segment workers used.
    pub segments: usize,
}

/// How the executor scans a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Stream column-major chunks through [`Aggregate::transition_chunk`]
    /// with chunk-level predicate evaluation (default).
    #[default]
    Chunked,
    /// Materialize each row and call [`Aggregate::transition`], evaluating
    /// predicates row by row — the engine's original execution model, kept
    /// for debugging and for measuring the vectorization speedup.
    RowAtATime,
}

/// Executes aggregates over partitioned tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    /// When true (default), segments are processed by parallel worker
    /// threads; when false everything runs on the calling thread, which is
    /// occasionally useful for debugging and for measuring parallel speedup.
    parallel: bool,
    mode: ExecutionMode,
}

impl Executor {
    /// Creates a parallel, chunk-at-a-time executor (one worker per segment).
    pub fn new() -> Self {
        Self {
            parallel: true,
            mode: ExecutionMode::Chunked,
        }
    }

    /// Creates an executor that processes segments serially on the calling
    /// thread.  The per-segment transition/merge structure is identical, so
    /// results match the parallel path exactly.
    pub fn serial() -> Self {
        Self {
            parallel: false,
            mode: ExecutionMode::Chunked,
        }
    }

    /// Selects the scan mode (chunked by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for a parallel executor using the legacy per-row scan.
    pub fn row_at_a_time() -> Self {
        Self::new().with_mode(ExecutionMode::RowAtATime)
    }

    /// Whether this executor runs segments in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The scan mode in use.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Runs `aggregate` over every row of `table`, returning the finalized
    /// output.
    ///
    /// # Errors
    /// Propagates transition/final errors from the aggregate.
    pub fn aggregate<A: Aggregate>(&self, table: &Table, aggregate: &A) -> Result<A::Output> {
        self.aggregate_filtered(table, aggregate, None)
    }

    /// Runs `aggregate` over the rows of `table` accepted by `filter`,
    /// returning the finalized output together with execution statistics.
    ///
    /// # Errors
    /// Propagates transition/final errors from the aggregate and predicate
    /// evaluation errors from the filter.
    pub fn aggregate_with_stats<A: Aggregate>(
        &self,
        table: &Table,
        aggregate: &A,
        filter: Option<&Predicate>,
    ) -> Result<(A::Output, ExecutionStats)> {
        let schema = table.schema();
        let num_segments = table.num_segments();
        let mode = self.mode;

        let segment_results: Vec<Result<(A::State, u64, u64)>> = if self.parallel
            && num_segments > 1
        {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..num_segments)
                    .map(|seg| {
                        let segment = table.segment(seg);
                        scope.spawn(move || {
                            Self::run_segment(aggregate, segment, schema, filter, mode)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segment worker panicked"))
                    .collect()
            })
        } else {
            (0..num_segments)
                .map(|seg| Self::run_segment(aggregate, table.segment(seg), schema, filter, mode))
                .collect()
        };

        let mut merged: Option<A::State> = None;
        let mut stats = ExecutionStats {
            rows_scanned: 0,
            rows_aggregated: 0,
            segments: num_segments,
        };
        for res in segment_results {
            let (state, scanned, aggregated) = res?;
            stats.rows_scanned += scanned;
            stats.rows_aggregated += aggregated;
            merged = Some(match merged {
                None => state,
                Some(prev) => aggregate.merge(prev, state),
            });
        }
        let state = merged.unwrap_or_else(|| aggregate.initial_state());
        Ok((aggregate.finalize(state)?, stats))
    }

    /// Like [`Executor::aggregate`] but with an optional row filter.
    ///
    /// # Errors
    /// Propagates aggregate and predicate errors.
    pub fn aggregate_filtered<A: Aggregate>(
        &self,
        table: &Table,
        aggregate: &A,
        filter: Option<&Predicate>,
    ) -> Result<A::Output> {
        Ok(self.aggregate_with_stats(table, aggregate, filter)?.0)
    }

    fn run_segment<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        schema: &Schema,
        filter: Option<&Predicate>,
        mode: ExecutionMode,
    ) -> Result<(A::State, u64, u64)> {
        match mode {
            ExecutionMode::Chunked => Self::run_segment_chunked(aggregate, segment, schema, filter),
            ExecutionMode::RowAtATime => {
                Self::run_segment_by_rows(aggregate, segment, schema, filter)
            }
        }
    }

    fn run_segment_chunked<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        schema: &Schema,
        filter: Option<&Predicate>,
    ) -> Result<(A::State, u64, u64)> {
        let mut state = aggregate.initial_state();
        let mut scanned = 0u64;
        let mut aggregated = 0u64;
        for chunk in segment.chunks() {
            if chunk.is_empty() {
                continue;
            }
            scanned += chunk.len() as u64;
            match filter {
                None => {
                    aggregated += chunk.len() as u64;
                    aggregate.transition_chunk(&mut state, chunk, schema)?;
                }
                Some(predicate) => {
                    // Filter once per chunk, not once per row.
                    let mask = predicate.evaluate_chunk(chunk, schema)?;
                    let selected = mask.count_selected();
                    if selected == 0 {
                        continue;
                    }
                    aggregated += selected as u64;
                    if selected == chunk.len() {
                        aggregate.transition_chunk(&mut state, chunk, schema)?;
                    } else {
                        let compacted = chunk.gather(&mask);
                        aggregate.transition_chunk(&mut state, &compacted, schema)?;
                    }
                }
            }
        }
        Ok((state, scanned, aggregated))
    }

    fn run_segment_by_rows<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        schema: &Schema,
        filter: Option<&Predicate>,
    ) -> Result<(A::State, u64, u64)> {
        let mut state = aggregate.initial_state();
        let mut scanned = 0u64;
        let mut aggregated = 0u64;
        for row in segment.iter() {
            scanned += 1;
            if let Some(pred) = filter {
                if !pred.evaluate(&row, schema)? {
                    continue;
                }
            }
            aggregated += 1;
            aggregate.transition(&mut state, &row, schema)?;
        }
        Ok((state, scanned, aggregated))
    }

    /// Runs a grouped aggregation: rows are grouped by the value of
    /// `group_column` and `aggregate` is evaluated independently per group.
    /// Groups are returned sorted by their key's display form for
    /// determinism.
    ///
    /// The grouping is evaluated per segment and the per-segment group states
    /// merged, so the data-parallel structure is identical to the ungrouped
    /// path (this is what lets MADlib run e.g. one regression per group in a
    /// single pass, as discussed for grouping constructs in Section 4.2).
    ///
    /// # Errors
    /// Propagates aggregate and column-lookup errors.
    pub fn aggregate_grouped<A: Aggregate>(
        &self,
        table: &Table,
        group_column: &str,
        aggregate: &A,
    ) -> Result<Vec<(crate::value::Value, A::Output)>> {
        use std::collections::HashMap;
        let schema = table.schema();
        let group_idx = schema.index_of(group_column)?;
        // Keyed by the stable display string of the group value (f64 is not
        // Eq/Hash); the representative Value is kept alongside.
        let mut groups: HashMap<String, (crate::value::Value, A::State)> = HashMap::new();
        for seg in 0..table.num_segments() {
            for row in table.segment(seg).iter() {
                let key_value = row.get(group_idx).clone();
                let key = key_value.to_string();
                let entry = groups
                    .entry(key)
                    .or_insert_with(|| (key_value.clone(), aggregate.initial_state()));
                aggregate.transition(&mut entry.1, &row, schema)?;
            }
        }
        let mut out: Vec<(crate::value::Value, A::Output)> = Vec::with_capacity(groups.len());
        let mut entries: Vec<(String, (crate::value::Value, A::State))> =
            groups.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, (value, state)) in entries {
            out.push((value, aggregate.finalize(state)?));
        }
        Ok(out)
    }

    /// Applies `map` to every row in parallel per segment and collects the
    /// outputs (segment order preserved).  This is the engine's equivalent of
    /// a parallel projection / per-row UDF scan.
    ///
    /// # Errors
    /// Propagates errors returned by `map`.
    pub fn parallel_map<T, F>(&self, table: &Table, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Row, &Schema) -> Result<T> + Sync,
    {
        let schema = table.schema();
        let num_segments = table.num_segments();
        let map_ref = &map;
        if self.parallel && num_segments > 1 {
            let per_segment: Vec<Result<Vec<T>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..num_segments)
                    .map(|seg| {
                        let segment = table.segment(seg);
                        scope.spawn(move || {
                            segment
                                .iter()
                                .map(|r| map_ref(&r, schema))
                                .collect::<Result<Vec<T>>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segment worker panicked"))
                    .collect()
            });
            let mut out = Vec::new();
            for res in per_segment {
                out.extend(res?);
            }
            Ok(out)
        } else {
            let mut out = Vec::with_capacity(table.row_count());
            for seg in 0..num_segments {
                for row in table.segment(seg).iter() {
                    out.push(map(&row, schema)?);
                }
            }
            Ok(out)
        }
    }

    /// Validates that the executor can run against the table (non-empty when
    /// `require_rows` is set).  Utility used by method drivers to produce a
    /// friendlier error than an empty-aggregate failure.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] for an empty table when rows
    /// are required.
    pub fn validate_input(&self, table: &Table, require_rows: bool) -> Result<()> {
        if require_rows && table.is_empty() {
            return Err(EngineError::invalid("input table has no rows"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{ArraySumAggregate, AvgAggregate, CountAggregate, SumAggregate};
    use crate::expr::Predicate;
    use crate::row;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;

    fn make_table(segments: usize, rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for i in 0..rows {
            let grp = if i % 2 == 0 { "even" } else { "odd" };
            t.insert(row![grp, i as f64, vec![i as f64, 1.0]]).unwrap();
        }
        t
    }

    #[test]
    fn parallel_and_serial_agree() {
        let t = make_table(4, 100);
        let parallel = Executor::new();
        let serial = Executor::serial();
        assert!(parallel.is_parallel());
        assert!(!serial.is_parallel());
        let sum_par = parallel.aggregate(&t, &SumAggregate::new("y")).unwrap();
        let sum_ser = serial.aggregate(&t, &SumAggregate::new("y")).unwrap();
        assert_eq!(sum_par, sum_ser);
        assert_eq!(sum_par, (0..100).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn chunked_and_row_modes_agree() {
        // Use a tiny chunk capacity so the scan crosses several chunk
        // boundaries per segment.
        let base = make_table(1, 157);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(16)
            .unwrap();
        t.insert_all(base.iter()).unwrap();

        let chunked = Executor::new();
        let row = Executor::row_at_a_time();
        assert_eq!(chunked.mode(), ExecutionMode::Chunked);
        assert_eq!(row.mode(), ExecutionMode::RowAtATime);

        let a = chunked.aggregate(&t, &SumAggregate::new("y")).unwrap();
        let b = row.aggregate(&t, &SumAggregate::new("y")).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());

        let a = chunked.aggregate(&t, &ArraySumAggregate::new("x")).unwrap();
        let b = row.aggregate(&t, &ArraySumAggregate::new("x")).unwrap();
        assert_eq!(a, b);

        let pred = Predicate::column_gt("y", 31.5).and(Predicate::column_lt("y", 141.0));
        let (ca, cs) = chunked
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        let (ra, rs) = row
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        assert_eq!(ca, ra);
        assert_eq!(cs, rs);
        assert_eq!(cs.rows_scanned, 157);
    }

    #[test]
    fn results_invariant_to_partitioning() {
        let base = make_table(1, 60);
        let expected = Executor::new()
            .aggregate(&base, &ArraySumAggregate::new("x"))
            .unwrap();
        for segs in [2, 3, 5, 8] {
            let t = base.repartition(segs).unwrap();
            let got = Executor::new()
                .aggregate(&t, &ArraySumAggregate::new("x"))
                .unwrap();
            assert_eq!(got, expected, "mismatch at {segs} segments");
        }
    }

    #[test]
    fn filtered_aggregation_and_stats() {
        let t = make_table(3, 10);
        let exec = Executor::new();
        let pred = Predicate::column_gt("y", 4.5);
        let (count, stats) = exec
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        assert_eq!(count, 5); // y in {5..9}
        assert_eq!(stats.rows_scanned, 10);
        assert_eq!(stats.rows_aggregated, 5);
        assert_eq!(stats.segments, 3);
    }

    #[test]
    fn empty_table_aggregates() {
        let t = make_table(2, 0);
        let exec = Executor::new();
        assert_eq!(exec.aggregate(&t, &CountAggregate).unwrap(), 0);
        assert_eq!(exec.aggregate(&t, &AvgAggregate::new("y")).unwrap(), None);
        assert!(exec.aggregate(&t, &ArraySumAggregate::new("x")).is_err());
        assert!(exec.validate_input(&t, true).is_err());
        assert!(exec.validate_input(&t, false).is_ok());
    }

    #[test]
    fn grouped_aggregation() {
        let t = make_table(4, 10);
        let exec = Executor::new();
        let groups = exec.aggregate_grouped(&t, "grp", &CountAggregate).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::Text("even".into()));
        assert_eq!(groups[0].1, 5);
        assert_eq!(groups[1].0, Value::Text("odd".into()));
        assert_eq!(groups[1].1, 5);
        assert!(exec
            .aggregate_grouped(&t, "missing", &CountAggregate)
            .is_err());
    }

    #[test]
    fn parallel_map_preserves_all_rows() {
        let t = make_table(4, 20);
        let exec = Executor::new();
        let doubled: Vec<f64> = exec
            .parallel_map(&t, |row, schema| {
                Ok(row.get_named(schema, "y")?.as_double()? * 2.0)
            })
            .unwrap();
        assert_eq!(doubled.len(), 20);
        let sum: f64 = doubled.iter().sum();
        assert_eq!(sum, 2.0 * (0..20).map(|i| i as f64).sum::<f64>());
        // Errors propagate.
        let err = exec.parallel_map(&t, |row, schema| {
            row.get_named(schema, "grp")?.as_double().map(|_| ())
        });
        assert!(err.is_err());
    }
}
