//! Parallel segment executor with chunk-at-a-time (vectorized) scans.
//!
//! Runs user-defined aggregates over a partitioned [`Table`] with one worker
//! per segment, mirroring Greenplum's "one query process per segment"
//! execution model that the paper's Figure 4/5 evaluation sweeps over.
//! The transition function streams over each segment locally; the resulting
//! per-segment states are merged on the coordinating thread; and the final
//! function produces the output.  Only the (small) transition states ever
//! cross segment boundaries — the property the paper credits for its
//! near-linear parallel speedup.
//!
//! Every scan the executor issues — ungrouped aggregation, grouped
//! aggregation, and `parallel_map` projections — runs on the shared
//! [`crate::scan`] pipeline: segments fan out to worker threads
//! ([`crate::scan::run_per_segment`], which converts worker panics into
//! [`EngineError::WorkerPanicked`]), and within a segment chunks stream
//! through [`crate::scan::scan_segment_chunks`] with predicates hoisted to
//! one [`crate::chunk::SelectionMask`] per chunk.
//! [`ExecutionMode::RowAtATime`] swaps the inner loop for the legacy per-row
//! scan; results are identical by contract, and the benchmark harness sweeps
//! both modes to reproduce the paper's Figure 4 "rewrite the inner loop"
//! comparison.

use crate::aggregate::Aggregate;
use crate::chunk::Segment;
use crate::error::{EngineError, Result};
use crate::expr::Predicate;
use crate::group::GroupKey;
use crate::row::Row;
use crate::scan;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Statistics describing one aggregate execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionStats {
    /// Rows scanned across all segments.
    pub rows_scanned: u64,
    /// Rows that passed the filter (equals `rows_scanned` when no filter).
    pub rows_aggregated: u64,
    /// Number of segment workers used.
    pub segments: usize,
}

/// How the executor scans a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Stream column-major chunks through [`Aggregate::transition_chunk`]
    /// with chunk-level predicate evaluation (default).
    #[default]
    Chunked,
    /// Materialize each row and call [`Aggregate::transition`], evaluating
    /// predicates row by row — the engine's original execution model, kept
    /// for debugging and for measuring the vectorization speedup.
    RowAtATime,
}

/// Once the mean rows-per-group within a chunk drops below this, the grouped
/// scan stops gathering per-group sub-chunks and falls back to per-row
/// transitions: a gather that yields only a couple of rows costs more than
/// the vectorized kernel saves.  (Equality of results does not depend on the
/// threshold — `transition_chunk` overrides are bit-identical to per-row
/// transitions by contract — so this is purely a performance knob.)
const MIN_ROWS_PER_GROUP_FOR_GATHER: usize = 4;

/// Executes aggregates over partitioned tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    /// When true (default), segments are processed by parallel worker
    /// threads; when false everything runs on the calling thread, which is
    /// occasionally useful for debugging and for measuring parallel speedup.
    parallel: bool,
    mode: ExecutionMode,
}

impl Executor {
    /// Creates a parallel, chunk-at-a-time executor (one worker per segment).
    pub fn new() -> Self {
        Self {
            parallel: true,
            mode: ExecutionMode::Chunked,
        }
    }

    /// Creates an executor that processes segments serially on the calling
    /// thread.  The per-segment transition/merge structure is identical, so
    /// results match the parallel path exactly.
    pub fn serial() -> Self {
        Self {
            parallel: false,
            mode: ExecutionMode::Chunked,
        }
    }

    /// Selects the scan mode (chunked by default).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for a parallel executor using the legacy per-row scan.
    pub fn row_at_a_time() -> Self {
        Self::new().with_mode(ExecutionMode::RowAtATime)
    }

    /// Whether this executor runs segments in parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// The scan mode in use.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Runs `aggregate` over every row of `table`, returning the finalized
    /// output.
    ///
    /// # Errors
    /// Propagates transition/final errors from the aggregate.
    pub fn aggregate<A: Aggregate>(&self, table: &Table, aggregate: &A) -> Result<A::Output> {
        self.aggregate_filtered(table, aggregate, None)
    }

    /// Runs `aggregate` over the rows of `table` accepted by `filter`,
    /// returning the finalized output together with execution statistics.
    ///
    /// # Errors
    /// Propagates transition/final errors from the aggregate and predicate
    /// evaluation errors from the filter.
    pub fn aggregate_with_stats<A: Aggregate>(
        &self,
        table: &Table,
        aggregate: &A,
        filter: Option<&Predicate>,
    ) -> Result<(A::Output, ExecutionStats)> {
        let schema = table.schema();
        let mode = self.mode;
        let segment_results = scan::run_per_segment(table, self.parallel, |_, segment| {
            Self::run_segment(aggregate, segment, schema, filter, mode)
        });

        let mut merged: Option<A::State> = None;
        let mut stats = ExecutionStats {
            rows_scanned: 0,
            rows_aggregated: 0,
            segments: table.num_segments(),
        };
        for res in segment_results {
            let (state, seg_stats) = res?;
            stats.rows_scanned += seg_stats.rows_scanned;
            stats.rows_aggregated += seg_stats.rows_passed;
            merged = Some(match merged {
                None => state,
                Some(prev) => aggregate.merge(prev, state),
            });
        }
        let state = merged.unwrap_or_else(|| aggregate.initial_state());
        Ok((aggregate.finalize(state)?, stats))
    }

    /// Like [`Executor::aggregate`] but with an optional row filter.
    ///
    /// # Errors
    /// Propagates aggregate and predicate errors.
    pub fn aggregate_filtered<A: Aggregate>(
        &self,
        table: &Table,
        aggregate: &A,
        filter: Option<&Predicate>,
    ) -> Result<A::Output> {
        Ok(self.aggregate_with_stats(table, aggregate, filter)?.0)
    }

    fn run_segment<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        schema: &Schema,
        filter: Option<&Predicate>,
        mode: ExecutionMode,
    ) -> Result<(A::State, scan::SegmentScanStats)> {
        let mut state = aggregate.initial_state();
        let stats = match mode {
            ExecutionMode::Chunked => {
                scan::scan_segment_chunks(segment, schema, filter, |batch| {
                    aggregate.transition_chunk(&mut state, batch.chunk(), schema)
                })?
            }
            ExecutionMode::RowAtATime => scan::scan_segment_rows(segment, schema, filter, |row| {
                aggregate.transition(&mut state, row, schema)
            })?,
        };
        Ok((state, stats))
    }

    /// Runs a grouped aggregation: rows are grouped by the value of
    /// `group_column` and `aggregate` is evaluated independently per group.
    /// Groups are returned sorted by their typed key
    /// ([`crate::group::GroupKey`]'s total order, NULL group first).
    ///
    /// The grouping is evaluated per segment on the shared scan pipeline and
    /// the per-segment group states merged, so the data-parallel structure is
    /// identical to the ungrouped path (this is what lets MADlib run e.g. one
    /// regression per group in a single pass, as discussed for grouping
    /// constructs in Section 4.2).  Within a segment the chunked mode
    /// partitions each chunk by key and feeds every group's rows through
    /// [`Aggregate::transition_chunk`] (falling back to per-row transitions
    /// when groups are too small for batching to pay off).
    ///
    /// # Errors
    /// Propagates aggregate and column-lookup errors.
    pub fn aggregate_grouped<A: Aggregate>(
        &self,
        table: &Table,
        group_column: &str,
        aggregate: &A,
    ) -> Result<Vec<(Value, A::Output)>> {
        self.aggregate_grouped_filtered(table, group_column, aggregate, None)
    }

    /// Like [`Executor::aggregate_grouped`] but aggregating only the rows
    /// accepted by `filter` (groups with no surviving rows are absent from
    /// the output).
    ///
    /// # Errors
    /// Propagates aggregate, predicate and column-lookup errors.
    pub fn aggregate_grouped_filtered<A: Aggregate>(
        &self,
        table: &Table,
        group_column: &str,
        aggregate: &A,
        filter: Option<&Predicate>,
    ) -> Result<Vec<(Value, A::Output)>> {
        let schema = table.schema();
        let group_idx = schema.index_of(group_column)?;
        let mode = self.mode;
        let segment_results =
            scan::run_per_segment(table, self.parallel, |_, segment| match mode {
                ExecutionMode::Chunked => {
                    Self::run_segment_grouped_chunked(aggregate, segment, schema, group_idx, filter)
                }
                ExecutionMode::RowAtATime => {
                    Self::run_segment_grouped_rows(aggregate, segment, schema, group_idx, filter)
                }
            });

        // Fold the per-segment states in segment order: per key, states
        // merge pairwise left-to-right, so results are deterministic and
        // agree with the ungrouped path's merge structure.
        let mut merged: HashMap<GroupKey, A::State> = HashMap::new();
        for res in segment_results {
            for (key, state) in res? {
                let combined = match merged.remove(&key) {
                    None => state,
                    Some(prev) => aggregate.merge(prev, state),
                };
                merged.insert(key, combined);
            }
        }

        let mut entries: Vec<(GroupKey, A::State)> = merged.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(entries.len());
        for (key, state) in entries {
            out.push((key.into_value(), aggregate.finalize(state)?));
        }
        Ok(out)
    }

    fn run_segment_grouped_chunked<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        schema: &Schema,
        group_idx: usize,
        filter: Option<&Predicate>,
    ) -> Result<Vec<(GroupKey, A::State)>> {
        // Segment-level group directory: each distinct key is hashed into a
        // dense slot exactly once per row, and states live in a flat vector
        // indexed by slot.
        let mut slots: HashMap<GroupKey, u32> = HashMap::new();
        let mut states: Vec<A::State> = Vec::new();
        // Per-chunk scratch, reused across chunks: the slot of every row,
        // the distinct slots of the current chunk (first-seen order) with
        // their in-chunk row counts, and an epoch-stamped marker per slot
        // (`u32::MAX` = not yet seen this chunk) locating each slot's entry
        // in `chunk_groups`.
        let mut row_slots: Vec<u32> = Vec::new();
        let mut chunk_groups: Vec<(u32, u32)> = Vec::new();
        let mut chunk_group_of_slot: Vec<u32> = Vec::new();
        let mut scatter: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut row_values: Vec<Value> = Vec::new();

        scan::scan_segment_chunks(segment, schema, filter, |batch| {
            let chunk = batch.chunk();
            let column = chunk.column(group_idx);
            let rows = chunk.len();

            // Pass 1: key every row into its segment-level slot and tally
            // this chunk's distinct groups (the per-group selection masks,
            // in compressed slot form).  Group values cluster in practice,
            // so probe the previous row's key in place first — for text and
            // array keys that skips the per-row key allocation entirely.
            row_slots.clear();
            for group in chunk_groups.drain(..) {
                chunk_group_of_slot[group.0 as usize] = u32::MAX;
            }
            let mut previous: Option<(GroupKey, u32)> = None;
            for i in 0..rows {
                let slot = match &previous {
                    Some((key, slot)) if key.matches_column(column, i) => *slot,
                    _ => {
                        let key = GroupKey::from_column(column, i);
                        let slot = match slots.get(&key) {
                            Some(&slot) => slot,
                            None => {
                                let slot = states.len() as u32;
                                states.push(aggregate.initial_state());
                                chunk_group_of_slot.push(u32::MAX);
                                slots.insert(key.clone(), slot);
                                slot
                            }
                        };
                        previous = Some((key, slot));
                        slot
                    }
                };
                row_slots.push(slot);
                let marker = &mut chunk_group_of_slot[slot as usize];
                if *marker == u32::MAX {
                    *marker = chunk_groups.len() as u32;
                    chunk_groups.push((slot, 0));
                }
                chunk_groups[*marker as usize].1 += 1;
            }

            if chunk_groups.len() == 1 {
                // Single-key chunk: the whole chunk is one group's batch.
                let slot = chunk_groups[0].0 as usize;
                return aggregate.transition_chunk(&mut states[slot], chunk, schema);
            }

            if rows >= chunk_groups.len() * MIN_ROWS_PER_GROUP_FOR_GATHER {
                // Batches are big enough for the vectorized kernels: bucket
                // the row indices by group (counting-sort scatter, one flat
                // reused buffer) and gather each group's rows — in row
                // order — into a compacted sub-chunk.
                offsets.clear();
                let mut running = 0u32;
                for &(_, count) in chunk_groups.iter() {
                    offsets.push(running);
                    running += count;
                }
                scatter.resize(rows, 0);
                let mut cursors = offsets.clone();
                for (i, &slot) in row_slots.iter().enumerate() {
                    let g = chunk_group_of_slot[slot as usize] as usize;
                    scatter[cursors[g] as usize] = i as u32;
                    cursors[g] += 1;
                }
                for (g, &(slot, count)) in chunk_groups.iter().enumerate() {
                    let start = offsets[g] as usize;
                    let indices = &scatter[start..start + count as usize];
                    let sub = chunk.gather_rows(indices);
                    aggregate.transition_chunk(&mut states[slot as usize], &sub, schema)?;
                }
            } else {
                // High-cardinality chunk: gathering two-row sub-chunks costs
                // more than it saves, so feed per-row transitions instead.
                // Identical results by the `transition_chunk` contract —
                // each group's state still sees its rows in row order.
                for (i, &slot) in row_slots.iter().enumerate() {
                    chunk.read_row_into(i, &mut row_values);
                    let row = Row::new(std::mem::take(&mut row_values));
                    aggregate.transition(&mut states[slot as usize], &row, schema)?;
                    row_values = row.into_values();
                }
            }
            Ok(())
        })?;

        Ok(Self::collect_slotted_states(slots, states))
    }

    fn run_segment_grouped_rows<A: Aggregate>(
        aggregate: &A,
        segment: &Segment,
        schema: &Schema,
        group_idx: usize,
        filter: Option<&Predicate>,
    ) -> Result<Vec<(GroupKey, A::State)>> {
        let mut slots: HashMap<GroupKey, u32> = HashMap::new();
        let mut states: Vec<A::State> = Vec::new();
        scan::scan_segment_rows(segment, schema, filter, |row| {
            let key = GroupKey::from_value(row.get(group_idx));
            let slot = match slots.get(&key) {
                Some(&slot) => slot,
                None => {
                    let slot = states.len() as u32;
                    states.push(aggregate.initial_state());
                    slots.insert(key, slot);
                    slot
                }
            };
            aggregate.transition(&mut states[slot as usize], row, schema)
        })?;
        Ok(Self::collect_slotted_states(slots, states))
    }

    /// Zips a key→slot directory back together with its slot-indexed states.
    fn collect_slotted_states<S>(
        slots: HashMap<GroupKey, u32>,
        states: Vec<S>,
    ) -> Vec<(GroupKey, S)> {
        let mut keys: Vec<(GroupKey, u32)> = slots.into_iter().collect();
        keys.sort_unstable_by_key(|(_, slot)| *slot);
        keys.into_iter().map(|(key, _)| key).zip(states).collect()
    }

    /// Applies `map` to every row in parallel per segment and collects the
    /// outputs (segment order preserved).  This is the engine's equivalent of
    /// a parallel projection / per-row UDF scan.
    ///
    /// The default implementation rides on [`Executor::parallel_map_chunks`]
    /// with a per-chunk adapter that materializes rows, so the fan-out,
    /// panic handling and chunk iteration are shared with every other scan.
    ///
    /// # Errors
    /// Propagates errors returned by `map`.
    pub fn parallel_map<T, F>(&self, table: &Table, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Row, &Schema) -> Result<T> + Sync,
    {
        self.parallel_map_chunks(table, |chunk, schema| {
            let mut out = Vec::with_capacity(chunk.len());
            let mut values = Vec::with_capacity(chunk.arity());
            for i in 0..chunk.len() {
                chunk.read_row_into(i, &mut values);
                let row = Row::new(std::mem::take(&mut values));
                out.push(map(&row, schema)?);
                values = row.into_values();
            }
            Ok(out)
        })
    }

    /// Chunk-level parallel projection: applies `map` once per column-major
    /// chunk (per segment, in parallel) and concatenates the outputs in
    /// segment-then-row order.  Chunk-aware consumers use this to read whole
    /// column slices (via [`crate::chunk::RowChunk::doubles`] /
    /// [`crate::chunk::RowChunk::double_arrays`]) instead of materialized
    /// rows; [`Executor::parallel_map`] is the row-level adapter on top.
    ///
    /// # Errors
    /// Propagates errors returned by `map`.
    pub fn parallel_map_chunks<T, F>(&self, table: &Table, map: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&crate::chunk::RowChunk, &Schema) -> Result<Vec<T>> + Sync,
    {
        let schema = table.schema();
        let per_segment = scan::run_per_segment(table, self.parallel, |_, segment| {
            let mut out = Vec::with_capacity(segment.len());
            for chunk in segment.chunks() {
                if chunk.is_empty() {
                    continue;
                }
                out.extend(map(chunk, schema)?);
            }
            Ok(out)
        });
        let mut out = Vec::with_capacity(table.row_count());
        for res in per_segment {
            out.extend(res?);
        }
        Ok(out)
    }

    /// Validates that the executor can run against the table (non-empty when
    /// `require_rows` is set).  Utility used by method drivers to produce a
    /// friendlier error than an empty-aggregate failure.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] for an empty table when rows
    /// are required.
    pub fn validate_input(&self, table: &Table, require_rows: bool) -> Result<()> {
        if require_rows && table.is_empty() {
            return Err(EngineError::invalid("input table has no rows"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{ArraySumAggregate, AvgAggregate, CountAggregate, SumAggregate};
    use crate::expr::Predicate;
    use crate::row;
    use crate::schema::{Column, ColumnType, Schema};
    use crate::value::Value;

    fn make_table(segments: usize, rows: usize) -> Table {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Text),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut t = Table::new(schema, segments).unwrap();
        for i in 0..rows {
            let grp = if i % 2 == 0 { "even" } else { "odd" };
            t.insert(row![grp, i as f64, vec![i as f64, 1.0]]).unwrap();
        }
        t
    }

    #[test]
    fn parallel_and_serial_agree() {
        let t = make_table(4, 100);
        let parallel = Executor::new();
        let serial = Executor::serial();
        assert!(parallel.is_parallel());
        assert!(!serial.is_parallel());
        let sum_par = parallel.aggregate(&t, &SumAggregate::new("y")).unwrap();
        let sum_ser = serial.aggregate(&t, &SumAggregate::new("y")).unwrap();
        assert_eq!(sum_par, sum_ser);
        assert_eq!(sum_par, (0..100).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn chunked_and_row_modes_agree() {
        // Use a tiny chunk capacity so the scan crosses several chunk
        // boundaries per segment.
        let base = make_table(1, 157);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(16)
            .unwrap();
        t.insert_all(base.iter()).unwrap();

        let chunked = Executor::new();
        let row = Executor::row_at_a_time();
        assert_eq!(chunked.mode(), ExecutionMode::Chunked);
        assert_eq!(row.mode(), ExecutionMode::RowAtATime);

        let a = chunked.aggregate(&t, &SumAggregate::new("y")).unwrap();
        let b = row.aggregate(&t, &SumAggregate::new("y")).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());

        let a = chunked.aggregate(&t, &ArraySumAggregate::new("x")).unwrap();
        let b = row.aggregate(&t, &ArraySumAggregate::new("x")).unwrap();
        assert_eq!(a, b);

        let pred = Predicate::column_gt("y", 31.5).and(Predicate::column_lt("y", 141.0));
        let (ca, cs) = chunked
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        let (ra, rs) = row
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        assert_eq!(ca, ra);
        assert_eq!(cs, rs);
        assert_eq!(cs.rows_scanned, 157);
    }

    #[test]
    fn results_invariant_to_partitioning() {
        let base = make_table(1, 60);
        let expected = Executor::new()
            .aggregate(&base, &ArraySumAggregate::new("x"))
            .unwrap();
        for segs in [2, 3, 5, 8] {
            let t = base.repartition(segs).unwrap();
            let got = Executor::new()
                .aggregate(&t, &ArraySumAggregate::new("x"))
                .unwrap();
            assert_eq!(got, expected, "mismatch at {segs} segments");
        }
    }

    #[test]
    fn filtered_aggregation_and_stats() {
        let t = make_table(3, 10);
        let exec = Executor::new();
        let pred = Predicate::column_gt("y", 4.5);
        let (count, stats) = exec
            .aggregate_with_stats(&t, &CountAggregate, Some(&pred))
            .unwrap();
        assert_eq!(count, 5); // y in {5..9}
        assert_eq!(stats.rows_scanned, 10);
        assert_eq!(stats.rows_aggregated, 5);
        assert_eq!(stats.segments, 3);
    }

    #[test]
    fn empty_table_aggregates() {
        let t = make_table(2, 0);
        let exec = Executor::new();
        assert_eq!(exec.aggregate(&t, &CountAggregate).unwrap(), 0);
        assert_eq!(exec.aggregate(&t, &AvgAggregate::new("y")).unwrap(), None);
        assert!(exec.aggregate(&t, &ArraySumAggregate::new("x")).is_err());
        assert!(exec.validate_input(&t, true).is_err());
        assert!(exec.validate_input(&t, false).is_ok());
    }

    #[test]
    fn grouped_aggregation() {
        let t = make_table(4, 10);
        let exec = Executor::new();
        let groups = exec.aggregate_grouped(&t, "grp", &CountAggregate).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::Text("even".into()));
        assert_eq!(groups[0].1, 5);
        assert_eq!(groups[1].0, Value::Text("odd".into()));
        assert_eq!(groups[1].1, 5);
        assert!(exec
            .aggregate_grouped(&t, "missing", &CountAggregate)
            .is_err());
    }

    #[test]
    fn grouped_aggregation_modes_and_filters_agree() {
        let base = make_table(1, 97);
        let mut t = Table::new(base.schema().clone(), 4)
            .unwrap()
            .with_chunk_capacity(16)
            .unwrap();
        t.insert_all(base.iter()).unwrap();

        let pred = Predicate::column_gt("y", 20.5);
        for filter in [None, Some(&pred)] {
            let chunked = Executor::new()
                .aggregate_grouped_filtered(&t, "grp", &SumAggregate::new("y"), filter)
                .unwrap();
            let by_rows = Executor::row_at_a_time()
                .aggregate_grouped_filtered(&t, "grp", &SumAggregate::new("y"), filter)
                .unwrap();
            assert_eq!(chunked.len(), by_rows.len());
            for ((ka, va), (kb, vb)) in chunked.iter().zip(&by_rows) {
                assert_eq!(ka, kb);
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        // Filtered grouped aggregation drops rows, not groups with rows.
        let filtered = Executor::new()
            .aggregate_grouped_filtered(&t, "grp", &CountAggregate, Some(&pred))
            .unwrap();
        let total: u64 = filtered.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 97 - 21);
    }

    #[test]
    fn grouped_keys_are_typed_not_stringly() {
        let schema = Schema::new(vec![
            Column::new("k", ColumnType::Double),
            Column::new("v", ColumnType::Double),
        ]);
        let mut t = Table::new(schema, 2).unwrap();
        // -0.0 and 0.0 must be distinct groups; NaNs must form one group.
        t.insert(row![0.0, 1.0]).unwrap();
        t.insert(row![-0.0, 2.0]).unwrap();
        t.insert(row![f64::NAN, 4.0]).unwrap();
        t.insert(row![f64::NAN, 8.0]).unwrap();
        t.insert(Row::new(vec![Value::Null, Value::Double(16.0)]))
            .unwrap();
        let groups = Executor::new()
            .aggregate_grouped(&t, "k", &SumAggregate::new("v"))
            .unwrap();
        assert_eq!(groups.len(), 4);
        // Total order: NULL first, then -0.0 < 0.0 < NaN.
        assert_eq!(groups[0].0, Value::Null);
        assert_eq!(groups[0].1, 16.0);
        match groups[1].0 {
            Value::Double(v) => assert_eq!(v.to_bits(), (-0.0f64).to_bits()),
            ref other => panic!("unexpected key {other:?}"),
        }
        assert_eq!(groups[1].1, 2.0);
        assert_eq!(groups[2].0, Value::Double(0.0));
        assert_eq!(groups[2].1, 1.0);
        match groups[3].0 {
            Value::Double(v) => assert!(v.is_nan()),
            ref other => panic!("unexpected key {other:?}"),
        }
        assert_eq!(groups[3].1, 12.0);

        // Integer keys sort numerically, not lexicographically.
        let schema = Schema::new(vec![
            Column::new("k", ColumnType::Int),
            Column::new("v", ColumnType::Double),
        ]);
        let mut t = Table::new(schema, 2).unwrap();
        for k in [10i64, 9, 100, 2] {
            t.insert(row![k, 1.0]).unwrap();
        }
        let groups = Executor::new()
            .aggregate_grouped(&t, "k", &CountAggregate)
            .unwrap();
        let keys: Vec<i64> = groups
            .iter()
            .map(|(k, _)| match k {
                Value::Int(v) => *v,
                other => panic!("unexpected key {other:?}"),
            })
            .collect();
        assert_eq!(keys, vec![2, 9, 10, 100]);
    }

    #[test]
    fn worker_panics_surface_as_errors_not_aborts() {
        struct PanickyAggregate;
        impl Aggregate for PanickyAggregate {
            type State = u64;
            type Output = u64;
            fn initial_state(&self) -> u64 {
                0
            }
            fn transition(&self, _: &mut u64, row: &Row, _: &Schema) -> Result<()> {
                if row.get(1).as_double()? >= 8.0 {
                    panic!("transition exploded");
                }
                Ok(())
            }
            fn merge(&self, left: u64, right: u64) -> u64 {
                left + right
            }
            fn finalize(&self, state: u64) -> Result<u64> {
                Ok(state)
            }
        }

        let t = make_table(4, 32);
        for exec in [
            Executor::row_at_a_time(),
            Executor::serial().with_mode(ExecutionMode::RowAtATime),
        ] {
            let err = exec.aggregate(&t, &PanickyAggregate).unwrap_err();
            match err {
                EngineError::WorkerPanicked { message } => {
                    assert!(message.contains("transition exploded"), "got: {message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }

        // parallel_map workers propagate panics the same way.
        let err = Executor::new()
            .parallel_map(&t, |row, _| -> Result<f64> {
                if row.get(1).as_double()? >= 8.0 {
                    panic!("map exploded");
                }
                Ok(0.0)
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanicked { .. }));
    }

    #[test]
    fn parallel_map_preserves_all_rows() {
        let t = make_table(4, 20);
        let exec = Executor::new();
        let doubled: Vec<f64> = exec
            .parallel_map(&t, |row, schema| {
                Ok(row.get_named(schema, "y")?.as_double()? * 2.0)
            })
            .unwrap();
        assert_eq!(doubled.len(), 20);
        let sum: f64 = doubled.iter().sum();
        assert_eq!(sum, 2.0 * (0..20).map(|i| i as f64).sum::<f64>());
        // Errors propagate.
        let err = exec.parallel_map(&t, |row, schema| {
            row.get_named(schema, "grp")?.as_double().map(|_| ())
        });
        assert!(err.is_err());
    }

    #[test]
    fn parallel_map_chunks_matches_row_level_map() {
        let base = make_table(1, 53);
        let mut t = Table::new(base.schema().clone(), 3)
            .unwrap()
            .with_chunk_capacity(8)
            .unwrap();
        t.insert_all(base.iter()).unwrap();
        let exec = Executor::new();
        let by_rows: Vec<f64> = exec
            .parallel_map(&t, |row, schema| {
                Ok(row.get_named(schema, "y")?.as_double()? + 1.0)
            })
            .unwrap();
        let by_chunks: Vec<f64> = exec
            .parallel_map_chunks(&t, |chunk, schema| {
                let idx = schema.index_of("y")?;
                let column = chunk.doubles(idx)?;
                Ok(column.values.iter().map(|v| v + 1.0).collect())
            })
            .unwrap();
        assert_eq!(by_rows, by_chunks);
    }
}
