//! # madlib-engine
//!
//! A small in-memory, shared-nothing parallel database engine that plays the
//! role PostgreSQL/Greenplum plays for the original MADlib library.
//!
//! The MADlib paper is not about a new DBMS — it is about a *pattern* for
//! layering scalable analytics on top of one.  The pattern has three parts
//! (Section 3.1 of the paper), and each has a direct equivalent here:
//!
//! | Paper construct                         | This crate                      |
//! |-----------------------------------------|---------------------------------|
//! | Shared-nothing segments (Greenplum)     | [`Table`] partitions + the [`scan`] pipeline's per-segment fan-out |
//! | User-defined aggregate (transition / merge / final) | the [`aggregate::Aggregate`] trait |
//! | `source_table` + `WHERE` + `grouping_cols` (Sections 3–4) | [`dataset::Dataset`]: `db.dataset("t")?.filter(...).group_by([...])` — `grouping_cols` is an arbitrary column list |
//! | `GROUP BY` over an aggregate (Section 4.2) | `Session::train` / [`dataset::Dataset::aggregate_per_group`] with typed [`group::GroupKey`]s — composite for multi-column `group_by`, one [`group::KeyPart`] per column (`madlib_core::train` hosts the `Session`/`Estimator` half; *every* trainable method implements `Estimator`, from linregr through `LowRankFactorization`, `Lda`, `Apriori` and the text crate's `CrfEstimator`) |
//! | Driver UDF + temp tables for iteration  | [`iteration::IterationController`] + [`Database`] temp tables |
//! | Templated queries over arbitrary schemas| [`template`] schema introspection |
//! | In-database scoring (the macro-thesis applied to serving) | [`score::Scorer`] + [`dataset::Dataset::score`] / [`dataset::Dataset::score_per_group`] / [`dataset::Dataset::top_k_by_score`], models resolved from the [`catalog::ModelCatalog`] in [`Database::models`] |
//! | Streaming ingest + incremental model maintenance (algebraic transition/merge/final under appends) | [`Database::append_rows`] + [`materialize::MaterializedAggregate`] chunk-watermark views (registered via [`Database::register_view`], refreshed via [`Database::refresh_view`]; `madlib_core::train` surfaces them as `Session::train_incremental` / `Session::refresh`) |
//! | DBMS durability underneath the analytics (the paper assumes PostgreSQL/Greenplum WAL + checkpoints) | [`Database::open`] / [`Database::recover`] / [`Database::checkpoint`]: a group-commit write-ahead log of catalog-level mutations plus chunk-granular snapshots — each sealed immutable chunk is appended to its segment's snapshot file exactly once — with recovery replaying the committed WAL tail over the latest snapshot, bit-identically (commit point = the fsync of the group-commit batch carrying the record) |
//!
//! The old `Executor::aggregate_filtered` / `aggregate_grouped` /
//! `aggregate_grouped_filtered` method matrix has been **removed**:
//! filtered and grouped scans are expressed exclusively through
//! [`dataset::Dataset`].
//!
//! Data flows exactly as in the paper: large data lives in partitioned
//! tables, transition functions stream over each partition locally and in
//! parallel, per-segment states are merged, and only small model states ever
//! cross the "driver" boundary.
//!
//! ## Execution model: chunk-at-a-time (vectorized) scans
//!
//! The paper's Figure 4 shows linear regression getting ~100× faster across
//! three MADlib releases purely from restructuring the transition function's
//! inner loop.  This engine applies the same lesson to the scan itself:
//!
//! * **Storage** — each [`Table`] segment holds fixed-capacity column-major
//!   [`chunk::RowChunk`]s.  A scalar `double precision` column is one
//!   contiguous `f64` buffer per chunk; a `double precision[]` feature-vector
//!   column is one flattened buffer plus an offset table; every column
//!   carries a [`chunk::NullBitmap`].  Chunks sit behind `Arc`: sealed
//!   (full) chunks are immutable and shared by snapshot reads
//!   ([`Database::table`] / [`Database::dataset`] clone bookkeeping only,
//!   never buffers), while the open tail chunk is copy-on-write under
//!   append — see the snapshot-isolation notes on [`database`].
//! * **Aggregates** — [`Aggregate::transition_chunk`] receives a whole chunk.
//!   The default implementation materializes rows and calls the per-row
//!   [`Aggregate::transition`], so existing aggregates work unchanged; hot
//!   aggregates override it with kernels over the contiguous buffers.
//!   Overrides must be bit-for-bit equivalent to the fallback (same values,
//!   same floating-point accumulation order) so results never depend on the
//!   execution mode — the cross-crate property tests enforce this.
//! * **Filters** — the executor evaluates predicates once per chunk via
//!   [`expr::Predicate::evaluate_chunk`], producing a
//!   [`chunk::SelectionMask`]; fully-selected chunks pass through untouched
//!   and partially-selected chunks are gathered into a compacted chunk, so
//!   the per-row branch disappears from transition inner loops.
//! * **Pipeline** — the [`scan`] module packages the scan loop itself
//!   (chunk iteration, filter → mask, compaction, panic-safe
//!   thread-per-segment fan-out) as reusable primitives.  *Every* scan
//!   consumer runs on it: ungrouped aggregation, grouped aggregation
//!   ([`dataset::Dataset::aggregate_per_group`], per-segment hash grouping
//!   on typed — possibly composite — [`group::GroupKey`]s: each chunk is
//!   partitioned by key and every group's rows are gathered, in row order,
//!   into a compacted sub-chunk for [`Aggregate::transition_chunk`]; chunks
//!   with more groups than direct gathers pay for run a radix partition
//!   pass instead, staging rows into group-slot buckets across chunks via
//!   [`chunk::RowChunk::append_rows`] and flushing each group as one batch
//!   — bit-identical either way; [`group::partition_by_group`] exposes the
//!   same per-group [`chunk::SelectionMask`] partitioning to standalone
//!   consumers), and projections ([`dataset::Dataset::map_chunks`] /
//!   [`Executor::parallel_map_chunks`] with the row-level adapters layered
//!   on top).
//! * **Modes** — [`executor::ExecutionMode::RowAtATime`] forces the legacy
//!   per-row scan.  The benchmark harness sweeps both modes to reproduce the
//!   paper's inner-loop comparison on the scan axis.
//!
//! New methods opt in by overriding `transition_chunk` (typically via
//! [`chunk::RowChunk::doubles`] / [`chunk::RowChunk::double_arrays`] and the
//! batched kernels in `madlib-linalg`); everything else — merge, finalize,
//! drivers, grouping — is unchanged.  Consumers that are not aggregates
//! (sketch passes, projections) build on [`scan::scan_segment_chunks`] +
//! [`scan::run_per_segment`] directly or use the `parallel_map_chunks`
//! projection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod catalog;
pub mod chunk;
pub mod database;
pub mod dataset;
pub mod error;
pub mod executor;
pub mod expr;
pub mod group;
pub mod iteration;
pub mod materialize;
mod persist;
pub mod row;
pub mod scan;
pub mod schema;
pub mod score;
pub mod table;
pub mod template;
pub mod value;
mod wal;

pub use aggregate::{Aggregate, FinalizeScratch};
pub use catalog::ModelCatalog;
pub use chunk::{RowChunk, SelectionMask};
pub use database::Database;
pub use dataset::Dataset;
pub use error::{EngineError, Result};
pub use executor::{ExecutionMode, Executor};
pub use group::{GroupKey, KeyPart};
pub use materialize::{AnyMaterialized, MaterializedAggregate};
pub use row::Row;
pub use scan::{ScanBatch, StealGranularity};
pub use schema::{Column, ColumnType, Schema};
pub use score::{GroupScorers, Scorer, Similarity};
pub use table::Table;
pub use value::Value;
