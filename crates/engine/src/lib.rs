//! # madlib-engine
//!
//! A small in-memory, shared-nothing parallel database engine that plays the
//! role PostgreSQL/Greenplum plays for the original MADlib library.
//!
//! The MADlib paper is not about a new DBMS — it is about a *pattern* for
//! layering scalable analytics on top of one.  The pattern has three parts
//! (Section 3.1 of the paper), and each has a direct equivalent here:
//!
//! | Paper construct                         | This crate                      |
//! |-----------------------------------------|---------------------------------|
//! | Shared-nothing segments (Greenplum)     | [`Table`] partitions + [`executor`] worker threads |
//! | User-defined aggregate (transition / merge / final) | the [`aggregate::Aggregate`] trait |
//! | Driver UDF + temp tables for iteration  | [`iteration::IterationController`] + [`Database`] temp tables |
//! | Templated queries over arbitrary schemas| [`template`] schema introspection |
//!
//! Data flows exactly as in the paper: large data lives in partitioned
//! tables, transition functions stream over each partition locally and in
//! parallel, per-segment states are merged, and only small model states ever
//! cross the "driver" boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod database;
pub mod error;
pub mod executor;
pub mod expr;
pub mod iteration;
pub mod row;
pub mod schema;
pub mod table;
pub mod template;
pub mod value;

pub use aggregate::Aggregate;
pub use database::Database;
pub use error::{EngineError, Result};
pub use executor::Executor;
pub use row::Row;
pub use schema::{Column, ColumnType, Schema};
pub use table::Table;
pub use value::Value;
