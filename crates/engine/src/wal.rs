//! Write-ahead log with group commit.
//!
//! The log is a single append-only file: a fixed 24-byte header (magic,
//! epoch, header checksum) followed by *records*, each framed as
//! `[u32 payload length][u64 checksum][payload]` (see [`crate::persist`] for
//! the frame codec and the payload format).  A record is **committed** once
//! the bytes through its frame are fsynced; replay stops at the first
//! missing, short, or checksum-failing frame, so a torn tail write can only
//! ever drop a *suffix* of records — never corrupt or reorder the prefix.
//!
//! ## Group commit
//!
//! `fsync` dominates small-append latency, so concurrent committers share
//! one.  [`Wal::append`] is cheap — it serializes the frame into a pending
//! queue under the state mutex and returns a sequence-number ticket; the
//! caller performs its in-memory mutation while *holding the table lock
//! across the enqueue*, which makes WAL order identical to apply order.
//! [`Wal::wait`] then elects the first waiter as *leader*: it drains the
//! entire pending queue, writes it with a single `write` + `fdatasync`, and
//! wakes every follower whose ticket the batch covered.  Under 64 concurrent
//! appenders one fsync typically commits dozens of records; with group
//! commit disabled (the benchmark baseline) each leader flushes exactly one
//! record per fsync.
//!
//! ## Epochs
//!
//! The header carries an epoch so that checkpoint truncation is crash-safe:
//! the manifest records `(epoch, replay offset)` *before* the WAL is reset
//! to `epoch + 1`.  Recovery accepts either the manifest's epoch (replay
//! from the recorded offset) or its successor (replay from the header) and
//! rejects anything else as corruption — see [`crate::persist`].

use crate::error::{EngineError, Result};
use crate::persist::{self, FrameParse};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// File magic identifying a WAL and its format version.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"MADWAL01";

/// Bytes of the WAL header: magic (8) + epoch (8) + checksum (8).
pub(crate) const WAL_HEADER_LEN: u64 = 24;

fn header_bytes(epoch: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut out = [0u8; WAL_HEADER_LEN as usize];
    out[..8].copy_from_slice(WAL_MAGIC);
    out[8..16].copy_from_slice(&epoch.to_le_bytes());
    let sum = persist::checksum64(&out[..16]);
    out[16..24].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Parses a WAL header, returning its epoch; `None` when the bytes are too
/// short, carry the wrong magic, or fail the checksum (recovery treats all
/// three as "no usable log").
pub(crate) fn parse_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        return None;
    }
    let sum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if persist::checksum64(&bytes[..16]) != sum {
        return None;
    }
    Some(u64::from_le_bytes(
        bytes[8..16].try_into().expect("8 bytes"),
    ))
}

/// Reads just the header epoch of the WAL at `path`: `Ok(None)` for a
/// missing file or an unusable (short / wrong-magic / checksum-failing)
/// header.  Recovery calls this before deciding the replay offset, without
/// paying for a full-file read.
pub(crate) fn read_epoch(path: &Path) -> Result<Option<u64>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(EngineError::storage("open wal", e)),
    };
    let mut buf = [0u8; WAL_HEADER_LEN as usize];
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(EngineError::storage("read wal header", e)),
        }
    }
    Ok(parse_header(&buf[..filled]))
}

/// The result of scanning a WAL file's record area.  The header epoch is
/// read separately via [`read_epoch`].
pub(crate) struct WalScan {
    /// Committed record payloads, in log order, starting at the scan offset.
    pub records: Vec<Vec<u8>>,
    /// Byte offset one past the last valid frame — the truncation point for
    /// resuming appends (anything beyond it is a torn or corrupt tail).
    pub valid_len: u64,
}

/// Reads the WAL at `path` and parses frames starting at `from` (callers
/// pass the manifest's replay offset, or [`WAL_HEADER_LEN`] for a full
/// scan).  Bytes before `from` are not parsed: they were consumed by the
/// checkpoint the manifest describes and may legitimately be unreadable
/// (e.g. a flipped bit in an already-absorbed record).
pub(crate) fn scan(path: &Path, from: Option<u64>) -> Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
            })
        }
        Err(e) => return Err(EngineError::storage("read wal", e)),
    };
    if parse_header(&bytes).is_none() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
        });
    }
    let start = from.unwrap_or(WAL_HEADER_LEN).max(WAL_HEADER_LEN);
    let mut records = Vec::new();
    let mut pos = start as usize;
    // The manifest offset can exceed the surviving file length when the
    // crash truncated already-checkpointed bytes; nothing is replayable.
    if pos > bytes.len() {
        return Ok(WalScan {
            records,
            valid_len: start,
        });
    }
    while let FrameParse::Frame { payload, next } = persist::parse_frame(&bytes, pos) {
        records.push(payload.to_vec());
        pos = next;
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
    })
}

struct WalState {
    file: Arc<File>,
    epoch: u64,
    /// Bytes durably on disk (header + fsynced frames).
    durable_len: u64,
    /// Framed records awaiting flush, in ticket order.
    pending: Vec<(u64, Vec<u8>)>,
    next_seq: u64,
    durable_seq: u64,
    flushing: bool,
    group_commit: bool,
    /// First I/O failure; once set the log is poisoned and every commit
    /// fails (durability can no longer be promised).
    error: Option<String>,
}

/// A group-commit write-ahead log over one append-only file.
pub(crate) struct Wal {
    state: Mutex<WalState>,
    flushed: Condvar,
}

/// A commit ticket returned by [`Wal::append`]; pass to [`Wal::wait`].
pub(crate) type Ticket = u64;

impl Wal {
    /// Creates a fresh WAL at `path` with the given epoch, truncating any
    /// existing file.
    pub(crate) fn create(path: &Path, epoch: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| EngineError::storage("create wal", e))?;
        (&file)
            .write_all(&header_bytes(epoch))
            .and_then(|_| file.sync_all())
            .map_err(|e| EngineError::storage("init wal", e))?;
        Ok(Self::from_file(file, epoch, WAL_HEADER_LEN))
    }

    /// Reopens an existing WAL for appending, first truncating it to
    /// `valid_len` (cutting any torn tail found during recovery).
    pub(crate) fn resume(path: &Path, epoch: u64, valid_len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| EngineError::storage("open wal", e))?;
        file.set_len(valid_len)
            .and_then(|_| file.sync_all())
            .map_err(|e| EngineError::storage("truncate wal tail", e))?;
        Ok(Self::from_file(file, epoch, valid_len))
    }

    fn from_file(file: File, epoch: u64, durable_len: u64) -> Self {
        Self {
            state: Mutex::new(WalState {
                file: Arc::new(file),
                epoch,
                durable_len,
                pending: Vec::new(),
                next_seq: 1,
                durable_seq: 0,
                flushing: false,
                group_commit: true,
                error: None,
            }),
            flushed: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WalState> {
        // A poisoned mutex only means another committer panicked between
        // state updates that are individually consistent; recover the guard.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Enqueues one record and returns its commit ticket.  Cheap (no I/O):
    /// callers invoke this while holding the lock that orders the matching
    /// in-memory mutation, then release that lock before [`Wal::wait`].
    pub(crate) fn append(&self, payload: &[u8]) -> Ticket {
        let frame = persist::frame(payload);
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push((seq, frame));
        seq
    }

    /// Blocks until the record behind `ticket` is fsynced (electing this
    /// thread as flush leader when none is active), or until the log is
    /// poisoned by an I/O failure.
    pub(crate) fn wait(&self, ticket: Ticket) -> Result<()> {
        let mut st = self.lock();
        loop {
            if let Some(msg) = &st.error {
                return Err(EngineError::storage("wal commit", msg));
            }
            if st.durable_seq >= ticket {
                return Ok(());
            }
            if st.flushing || st.pending.is_empty() {
                st = match self.flushed.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                continue;
            }
            let take_all = st.group_commit;
            self.flush_batch(st, take_all)?;
            st = self.lock();
        }
    }

    /// Flushes every pending record (used by checkpoint before snapshotting,
    /// regardless of the group-commit setting).
    pub(crate) fn flush_all(&self) -> Result<()> {
        loop {
            let st = self.lock();
            if let Some(msg) = &st.error {
                return Err(EngineError::storage("wal flush", msg));
            }
            if st.pending.is_empty() && !st.flushing {
                return Ok(());
            }
            if st.flushing {
                let guard = match self.flushed.wait(st) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                drop(guard);
                continue;
            }
            self.flush_batch(st, true)?;
        }
    }

    /// Writes and fsyncs a batch from the front of the pending queue: the
    /// whole queue when `take_all`, exactly one record otherwise.  Leaders
    /// always drain from the front, so flushed sequence numbers are
    /// contiguous and `durable_seq` advances without gaps.
    fn flush_batch(&self, mut st: MutexGuard<'_, WalState>, take_all: bool) -> Result<()> {
        st.flushing = true;
        let batch: Vec<(u64, Vec<u8>)> = if take_all {
            std::mem::take(&mut st.pending)
        } else {
            vec![st.pending.remove(0)]
        };
        let file = Arc::clone(&st.file);
        drop(st);

        let mut buf = Vec::with_capacity(batch.iter().map(|(_, f)| f.len()).sum());
        for (_, frame) in &batch {
            buf.extend_from_slice(frame);
        }
        let io = (&*file).write_all(&buf).and_then(|_| file.sync_data());

        let mut st = self.lock();
        st.flushing = false;
        let result = match io {
            Ok(()) => {
                st.durable_len += buf.len() as u64;
                st.durable_seq = batch.last().expect("non-empty batch").0;
                Ok(())
            }
            Err(e) => {
                st.error = Some(e.to_string());
                Err(EngineError::storage("wal flush", e))
            }
        };
        drop(st);
        self.flushed.notify_all();
        result
    }

    /// Resets the log to a fresh file holding only a header with
    /// `new_epoch`.  The caller (checkpoint) must have drained the pending
    /// queue via [`Wal::flush_all`] and excluded concurrent committers.
    pub(crate) fn reset(&self, new_epoch: u64) -> Result<()> {
        let mut st = self.lock();
        debug_assert!(st.pending.is_empty() && !st.flushing);
        st.file
            .set_len(0)
            // The create path opens the file in write (not append) mode, so
            // the shared cursor must be rewound after truncation.
            .and_then(|_| (&*st.file).seek(SeekFrom::Start(0)))
            .and_then(|_| (&*st.file).write_all(&header_bytes(new_epoch)))
            .and_then(|_| st.file.sync_all())
            .map_err(|e| {
                st.error = Some(e.to_string());
                EngineError::storage("reset wal", e)
            })?;
        st.epoch = new_epoch;
        st.durable_len = WAL_HEADER_LEN;
        Ok(())
    }

    /// The current header epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Bytes durably on disk (header plus fsynced frames).  This is the
    /// replay offset a checkpoint records in the manifest.
    pub(crate) fn durable_len(&self) -> u64 {
        self.lock().durable_len
    }

    /// Enables or disables group commit.  Disabled, each commit pays its own
    /// fsync — the benchmark baseline quantifying what batching buys.
    pub(crate) fn set_group_commit(&self, enabled: bool) {
        self.lock().group_commit = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "madlib_wal_test_{}_{tag}_{n}.log",
            std::process::id()
        ))
    }

    #[test]
    fn records_round_trip_and_survive_resume() {
        let path = temp_wal("roundtrip");
        let wal = Wal::create(&path, 1).unwrap();
        for payload in [b"alpha".as_slice(), b"b".as_slice(), b"gamma!".as_slice()] {
            let t = wal.append(payload);
            wal.wait(t).unwrap();
        }
        let scanned = scan(&path, None).unwrap();
        assert_eq!(read_epoch(&path).unwrap(), Some(1));
        assert_eq!(
            scanned.records,
            vec![b"alpha".to_vec(), b"b".to_vec(), b"gamma!".to_vec()]
        );
        assert_eq!(scanned.valid_len, wal.durable_len());
        drop(wal);

        // Resuming at the valid length keeps the committed prefix intact.
        let wal = Wal::resume(&path, 1, scanned.valid_len).unwrap();
        let t = wal.append(b"delta");
        wal.wait(t).unwrap();
        let rescanned = scan(&path, None).unwrap();
        assert_eq!(rescanned.records.len(), 4);
        assert_eq!(rescanned.records[3], b"delta");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_and_flipped_bytes_stop_replay_at_the_prefix() {
        let path = temp_wal("torn");
        let wal = Wal::create(&path, 1).unwrap();
        let mut ends = Vec::new();
        for i in 0..4u8 {
            let t = wal.append(&[i; 9]);
            wal.wait(t).unwrap();
            ends.push(wal.durable_len());
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Truncation mid-record drops exactly the torn suffix.
        for cut in (ends[1] + 1)..ends[2] {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let s = scan(&path, None).unwrap();
            assert_eq!(s.records.len(), 2, "cut at {cut}");
            assert_eq!(s.valid_len, ends[1]);
        }

        // A flipped byte in record 2 invalidates it and everything after.
        let mut flipped = full.clone();
        flipped[ends[1] as usize + 13] ^= 0xff;
        std::fs::write(&path, &flipped).unwrap();
        let s = scan(&path, None).unwrap();
        assert_eq!(s.records.len(), 2);

        // A corrupted header makes the whole log unusable.
        let mut bad_header = full.clone();
        bad_header[3] ^= 0x01;
        std::fs::write(&path, &bad_header).unwrap();
        assert_eq!(read_epoch(&path).unwrap(), None);
        assert!(scan(&path, None).unwrap().records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_batches_concurrent_appenders() {
        let path = temp_wal("group");
        let wal = std::sync::Arc::new(Wal::create(&path, 7).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8u8 {
                let wal = std::sync::Arc::clone(&wal);
                scope.spawn(move || {
                    for i in 0..16u8 {
                        let ticket = wal.append(&[t, i]);
                        wal.wait(ticket).unwrap();
                    }
                });
            }
        });
        let s = scan(&path, None).unwrap();
        assert_eq!(read_epoch(&path).unwrap(), Some(7));
        assert_eq!(s.records.len(), 8 * 16);
        // Per-thread records appear in that thread's commit order.
        for t in 0..8u8 {
            let seq: Vec<u8> = s
                .records
                .iter()
                .filter(|r| r[0] == t)
                .map(|r| r[1])
                .collect();
            assert_eq!(seq, (0..16).collect::<Vec<u8>>());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_starts_a_fresh_epoch() {
        let path = temp_wal("reset");
        let wal = Wal::create(&path, 3).unwrap();
        let t = wal.append(b"old");
        wal.wait(t).unwrap();
        wal.flush_all().unwrap();
        wal.reset(4).unwrap();
        assert_eq!(wal.epoch(), 4);
        assert_eq!(wal.durable_len(), WAL_HEADER_LEN);
        let t = wal.append(b"new");
        wal.wait(t).unwrap();
        let s = scan(&path, None).unwrap();
        assert_eq!(read_epoch(&path).unwrap(), Some(4));
        assert_eq!(s.records, vec![b"new".to_vec()]);
        std::fs::remove_file(&path).ok();
    }
}
