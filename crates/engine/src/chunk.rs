//! Chunked, column-major row storage — the vectorized execution layout.
//!
//! The paper's Figure 4 lesson is that the inner loop of a transition
//! function dominates end-to-end method runtime: MADlib's linear regression
//! got ~100× faster across three releases purely by restructuring how the
//! per-row update touches memory.  The same applies one level up: handing
//! aggregates one [`Row`] at a time makes every transition pay enum dispatch
//! on [`Value`], pointer-chasing into per-row `Vec`s, and per-row virtual
//! call overhead.
//!
//! A [`RowChunk`] stores a fixed-size batch of rows column-major: each column
//! is one contiguous buffer ([`ColumnChunk`]) plus a [`NullBitmap`].  Scalar
//! `double precision` columns become plain `&[f64]` slices; array columns
//! (feature vectors) become one flattened `f64` buffer with an offset table,
//! so a chunk of 1 024 training points is a single contiguous block the
//! batched kernels in `madlib-linalg` can stream.  Aggregates opt in through
//! [`crate::Aggregate::transition_chunk`]; everything else falls back to
//! per-row iteration over materialized rows with identical results.

use crate::error::{EngineError, Result};
use crate::row::Row;
use crate::schema::{ColumnType, Schema};
use crate::value::Value;
use std::sync::Arc;

/// Number of rows a chunk holds before the table seals it and starts the
/// next one.  1 024 rows × 8 bytes keeps a scalar column inside L1 and a
/// ~100-wide feature-vector column inside L2 on common hardware.
pub const CHUNK_CAPACITY: usize = 1024;

/// A packed validity bitmap: bit `i` is set when row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one row's validity flag.
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.nulls += 1;
        }
        self.len += 1;
    }

    /// Whether row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Whether any row is NULL.  The fast paths check this once per chunk and
    /// skip all per-row validity tests when it is false — the common case for
    /// machine-generated training data.
    pub fn any_null(&self) -> bool {
        self.nulls > 0
    }

    /// The packed bitmap words (persistence reads them directly; bit `i` of
    /// the concatenated words is row `i`'s NULL flag).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from persisted words, recomputing the null count.
    ///
    /// # Errors
    /// Returns [`EngineError::Storage`] when the word count does not match
    /// `len` or bits past `len` are set (corrupt persisted data).
    pub(crate) fn from_raw(words: Vec<u64>, len: usize) -> Result<Self> {
        if words.len() != len.div_ceil(64) {
            return Err(EngineError::storage(
                "null bitmap",
                format!("{} words cannot cover {len} rows", words.len()),
            ));
        }
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err(EngineError::storage("null bitmap", "bits set past length"));
                }
            }
        }
        let nulls = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(Self { words, len, nulls })
    }

    fn pop(&mut self) {
        debug_assert!(self.len > 0);
        self.len -= 1;
        let word = self.len / 64;
        let bit = 1u64 << (self.len % 64);
        if self.words[word] & bit != 0 {
            self.words[word] &= !bit;
            self.nulls -= 1;
        }
    }

    fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
        self.nulls = 0;
    }
}

/// Rows of a chunk selected by a predicate, one bit per row.
///
/// Produced by [`crate::expr::Predicate::evaluate_chunk`]; the executor uses
/// it to either skip a chunk entirely, pass it through untouched, or gather
/// the selected rows into a compacted chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// A mask selecting every one of `len` rows.
    pub fn all(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Self { words, len }
    }

    /// A mask selecting none of `len` rows.
    pub fn none(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Selects or deselects row `i`.
    pub fn set(&mut self, i: usize, selected: bool) {
        debug_assert!(i < self.len);
        let bit = 1u64 << (i % 64);
        if selected {
            self.words[i / 64] |= bit;
        } else {
            self.words[i / 64] &= !bit;
        }
    }

    /// Whether row `i` is selected.
    pub fn is_selected(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of selected rows.
    pub fn count_selected(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the selected row indices in ascending order, skipping
    /// whole 64-row words that select nothing.  This keeps gathers of sparse
    /// masks (e.g. one group out of hundreds in a chunk) proportional to the
    /// number of *selected* rows rather than the chunk length.
    pub fn selected_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut remaining = word;
            std::iter::from_fn(move || {
                if remaining == 0 {
                    None
                } else {
                    let bit = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    Some(w * 64 + bit)
                }
            })
        })
    }

    /// Whether every row is selected.
    pub fn is_all_selected(&self) -> bool {
        self.count_selected() == self.len
    }

    /// In-place conjunction with another mask of the same length.
    pub fn and_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place disjunction with another mask of the same length.
    pub fn or_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn negate(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        // Clear the bits past `len` so counts stay correct.
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// One column of a chunk: a contiguous, type-specific buffer plus nulls.
///
/// Array-typed columns are flattened into a single values buffer with an
/// `offsets` table of length `rows + 1` (row `i` spans
/// `values[offsets[i]..offsets[i + 1]]`), so uniform-width feature vectors
/// occupy one dense block.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnChunk {
    /// `double precision` (also stores `bigint` values inserted into double
    /// columns, coerced once at insert instead of per scan).
    Double {
        /// One value per row; NULL rows hold `0.0`.
        values: Vec<f64>,
        /// Validity bitmap.
        nulls: NullBitmap,
    },
    /// `bigint`.
    Int {
        /// One value per row; NULL rows hold `0`.
        values: Vec<i64>,
        /// Validity bitmap.
        nulls: NullBitmap,
    },
    /// `boolean`.
    Bool {
        /// One value per row; NULL rows hold `false`.
        values: Vec<bool>,
        /// Validity bitmap.
        nulls: NullBitmap,
    },
    /// `text`.
    Text {
        /// One value per row; NULL rows hold an empty string.
        values: Vec<String>,
        /// Validity bitmap.
        nulls: NullBitmap,
    },
    /// `double precision[]`, flattened.
    DoubleArray {
        /// Concatenated element values of all rows.
        values: Vec<f64>,
        /// Row `i` spans `values[offsets[i]..offsets[i + 1]]`.
        offsets: Vec<usize>,
        /// Validity bitmap (a NULL row has an empty span).
        nulls: NullBitmap,
    },
    /// `bigint[]`, flattened.
    IntArray {
        /// Concatenated element values of all rows.
        values: Vec<i64>,
        /// Row `i` spans `values[offsets[i]..offsets[i + 1]]`.
        offsets: Vec<usize>,
        /// Validity bitmap (a NULL row has an empty span).
        nulls: NullBitmap,
    },
    /// `text[]`, flattened.
    TextArray {
        /// Concatenated element values of all rows.
        values: Vec<String>,
        /// Row `i` spans `values[offsets[i]..offsets[i + 1]]`.
        offsets: Vec<usize>,
        /// Validity bitmap (a NULL row has an empty span).
        nulls: NullBitmap,
    },
}

impl ColumnChunk {
    fn new(column_type: ColumnType) -> Self {
        match column_type {
            ColumnType::Double => ColumnChunk::Double {
                values: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ColumnType::Int => ColumnChunk::Int {
                values: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ColumnType::Bool => ColumnChunk::Bool {
                values: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ColumnType::Text => ColumnChunk::Text {
                values: Vec::new(),
                nulls: NullBitmap::new(),
            },
            ColumnType::DoubleArray => ColumnChunk::DoubleArray {
                values: Vec::new(),
                offsets: vec![0],
                nulls: NullBitmap::new(),
            },
            ColumnType::IntArray => ColumnChunk::IntArray {
                values: Vec::new(),
                offsets: vec![0],
                nulls: NullBitmap::new(),
            },
            ColumnType::TextArray => ColumnChunk::TextArray {
                values: Vec::new(),
                offsets: vec![0],
                nulls: NullBitmap::new(),
            },
        }
    }

    /// Appends one schema-validated value.
    fn push(&mut self, value: &Value) -> Result<()> {
        match self {
            ColumnChunk::Double { values, nulls } => match value {
                Value::Null => {
                    values.push(0.0);
                    nulls.push(true);
                }
                other => {
                    values.push(other.as_double()?);
                    nulls.push(false);
                }
            },
            ColumnChunk::Int { values, nulls } => match value {
                Value::Null => {
                    values.push(0);
                    nulls.push(true);
                }
                other => {
                    values.push(other.as_int()?);
                    nulls.push(false);
                }
            },
            ColumnChunk::Bool { values, nulls } => match value {
                Value::Null => {
                    values.push(false);
                    nulls.push(true);
                }
                other => {
                    values.push(other.as_bool()?);
                    nulls.push(false);
                }
            },
            ColumnChunk::Text { values, nulls } => match value {
                Value::Null => {
                    values.push(String::new());
                    nulls.push(true);
                }
                other => {
                    values.push(other.as_text()?.to_owned());
                    nulls.push(false);
                }
            },
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            } => match value {
                Value::Null => {
                    offsets.push(values.len());
                    nulls.push(true);
                }
                other => {
                    values.extend_from_slice(other.as_double_array()?);
                    offsets.push(values.len());
                    nulls.push(false);
                }
            },
            ColumnChunk::IntArray {
                values,
                offsets,
                nulls,
            } => match value {
                Value::Null => {
                    offsets.push(values.len());
                    nulls.push(true);
                }
                other => {
                    values.extend_from_slice(other.as_int_array()?);
                    offsets.push(values.len());
                    nulls.push(false);
                }
            },
            ColumnChunk::TextArray {
                values,
                offsets,
                nulls,
            } => match value {
                Value::Null => {
                    offsets.push(values.len());
                    nulls.push(true);
                }
                other => {
                    values.extend_from_slice(other.as_text_array()?);
                    offsets.push(values.len());
                    nulls.push(false);
                }
            },
        }
        Ok(())
    }

    /// Removes the most recently pushed value (used to roll back a partially
    /// appended row when a later column of the same row fails to push).
    fn pop(&mut self) {
        match self {
            ColumnChunk::Double { values, nulls } => {
                values.pop();
                nulls.pop();
            }
            ColumnChunk::Int { values, nulls } => {
                values.pop();
                nulls.pop();
            }
            ColumnChunk::Bool { values, nulls } => {
                values.pop();
                nulls.pop();
            }
            ColumnChunk::Text { values, nulls } => {
                values.pop();
                nulls.pop();
            }
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            } => {
                offsets.pop();
                values.truncate(*offsets.last().expect("offsets never empty"));
                nulls.pop();
            }
            ColumnChunk::IntArray {
                values,
                offsets,
                nulls,
            } => {
                offsets.pop();
                values.truncate(*offsets.last().expect("offsets never empty"));
                nulls.pop();
            }
            ColumnChunk::TextArray {
                values,
                offsets,
                nulls,
            } => {
                offsets.pop();
                values.truncate(*offsets.last().expect("offsets never empty"));
                nulls.pop();
            }
        }
    }

    /// Validity bitmap of this column.
    pub fn nulls(&self) -> &NullBitmap {
        match self {
            ColumnChunk::Double { nulls, .. }
            | ColumnChunk::Int { nulls, .. }
            | ColumnChunk::Bool { nulls, .. }
            | ColumnChunk::Text { nulls, .. }
            | ColumnChunk::DoubleArray { nulls, .. }
            | ColumnChunk::IntArray { nulls, .. }
            | ColumnChunk::TextArray { nulls, .. } => nulls,
        }
    }

    /// The SQL-ish name of the stored type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ColumnChunk::Double { .. } => "double precision",
            ColumnChunk::Int { .. } => "bigint",
            ColumnChunk::Bool { .. } => "boolean",
            ColumnChunk::Text { .. } => "text",
            ColumnChunk::DoubleArray { .. } => "double precision[]",
            ColumnChunk::IntArray { .. } => "bigint[]",
            ColumnChunk::TextArray { .. } => "text[]",
        }
    }

    /// Materializes row `i` of this column as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        if self.nulls().is_null(i) {
            return Value::Null;
        }
        match self {
            ColumnChunk::Double { values, .. } => Value::Double(values[i]),
            ColumnChunk::Int { values, .. } => Value::Int(values[i]),
            ColumnChunk::Bool { values, .. } => Value::Bool(values[i]),
            ColumnChunk::Text { values, .. } => Value::Text(values[i].clone()),
            ColumnChunk::DoubleArray {
                values, offsets, ..
            } => Value::DoubleArray(values[offsets[i]..offsets[i + 1]].to_vec()),
            ColumnChunk::IntArray {
                values, offsets, ..
            } => Value::IntArray(values[offsets[i]..offsets[i + 1]].to_vec()),
            ColumnChunk::TextArray {
                values, offsets, ..
            } => Value::TextArray(values[offsets[i]..offsets[i + 1]].to_vec()),
        }
    }

    /// Copies the rows at `indices` (ascending) into a compacted column.
    fn gather_rows(&self, indices: &[u32]) -> ColumnChunk {
        fn scalars<T: Clone>(
            values: &[T],
            nulls: &NullBitmap,
            indices: &[u32],
        ) -> (Vec<T>, NullBitmap) {
            let mut out_values = Vec::with_capacity(indices.len());
            let mut out_nulls = NullBitmap::new();
            for &i in indices {
                out_values.push(values[i as usize].clone());
                out_nulls.push(nulls.is_null(i as usize));
            }
            (out_values, out_nulls)
        }

        fn arrays<T: Clone>(
            values: &[T],
            offsets: &[usize],
            nulls: &NullBitmap,
            indices: &[u32],
        ) -> (Vec<T>, Vec<usize>, NullBitmap) {
            let mut out_values = Vec::new();
            let mut out_offsets = Vec::with_capacity(indices.len() + 1);
            out_offsets.push(0);
            let mut out_nulls = NullBitmap::new();
            for &i in indices {
                let i = i as usize;
                out_values.extend_from_slice(&values[offsets[i]..offsets[i + 1]]);
                out_offsets.push(out_values.len());
                out_nulls.push(nulls.is_null(i));
            }
            (out_values, out_offsets, out_nulls)
        }

        match self {
            ColumnChunk::Double { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, indices);
                ColumnChunk::Double { values, nulls }
            }
            ColumnChunk::Int { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, indices);
                ColumnChunk::Int { values, nulls }
            }
            ColumnChunk::Bool { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, indices);
                ColumnChunk::Bool { values, nulls }
            }
            ColumnChunk::Text { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, indices);
                ColumnChunk::Text { values, nulls }
            }
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            } => {
                let (values, offsets, nulls) = arrays(values, offsets, nulls, indices);
                ColumnChunk::DoubleArray {
                    values,
                    offsets,
                    nulls,
                }
            }
            ColumnChunk::IntArray {
                values,
                offsets,
                nulls,
            } => {
                let (values, offsets, nulls) = arrays(values, offsets, nulls, indices);
                ColumnChunk::IntArray {
                    values,
                    offsets,
                    nulls,
                }
            }
            ColumnChunk::TextArray {
                values,
                offsets,
                nulls,
            } => {
                let (values, offsets, nulls) = arrays(values, offsets, nulls, indices);
                ColumnChunk::TextArray {
                    values,
                    offsets,
                    nulls,
                }
            }
        }
    }

    /// Appends the rows of `src` at `indices` (ascending) to this column.
    /// Both columns must share the same physical type.
    fn append_rows(&mut self, src: &ColumnChunk, indices: &[u32]) -> Result<()> {
        fn scalars<T: Clone>(
            out_values: &mut Vec<T>,
            out_nulls: &mut NullBitmap,
            values: &[T],
            nulls: &NullBitmap,
            indices: &[u32],
        ) {
            out_values.reserve(indices.len());
            for &i in indices {
                out_values.push(values[i as usize].clone());
                out_nulls.push(nulls.is_null(i as usize));
            }
        }

        fn arrays<T: Clone>(
            out_values: &mut Vec<T>,
            out_offsets: &mut Vec<usize>,
            out_nulls: &mut NullBitmap,
            values: &[T],
            offsets: &[usize],
            nulls: &NullBitmap,
            indices: &[u32],
        ) {
            out_offsets.reserve(indices.len());
            for &i in indices {
                let i = i as usize;
                out_values.extend_from_slice(&values[offsets[i]..offsets[i + 1]]);
                out_offsets.push(out_values.len());
                out_nulls.push(nulls.is_null(i));
            }
        }

        match (self, src) {
            (
                ColumnChunk::Double {
                    values: ov,
                    nulls: on,
                },
                ColumnChunk::Double { values, nulls },
            ) => scalars(ov, on, values, nulls, indices),
            (
                ColumnChunk::Int {
                    values: ov,
                    nulls: on,
                },
                ColumnChunk::Int { values, nulls },
            ) => scalars(ov, on, values, nulls, indices),
            (
                ColumnChunk::Bool {
                    values: ov,
                    nulls: on,
                },
                ColumnChunk::Bool { values, nulls },
            ) => scalars(ov, on, values, nulls, indices),
            (
                ColumnChunk::Text {
                    values: ov,
                    nulls: on,
                },
                ColumnChunk::Text { values, nulls },
            ) => scalars(ov, on, values, nulls, indices),
            (
                ColumnChunk::DoubleArray {
                    values: ov,
                    offsets: oo,
                    nulls: on,
                },
                ColumnChunk::DoubleArray {
                    values,
                    offsets,
                    nulls,
                },
            ) => arrays(ov, oo, on, values, offsets, nulls, indices),
            (
                ColumnChunk::IntArray {
                    values: ov,
                    offsets: oo,
                    nulls: on,
                },
                ColumnChunk::IntArray {
                    values,
                    offsets,
                    nulls,
                },
            ) => arrays(ov, oo, on, values, offsets, nulls, indices),
            (
                ColumnChunk::TextArray {
                    values: ov,
                    offsets: oo,
                    nulls: on,
                },
                ColumnChunk::TextArray {
                    values,
                    offsets,
                    nulls,
                },
            ) => arrays(ov, oo, on, values, offsets, nulls, indices),
            (target, src) => {
                return Err(EngineError::TypeMismatch {
                    expected: target.type_name(),
                    found: src.type_name().to_owned(),
                })
            }
        }
        Ok(())
    }

    /// Copies the rows selected by `mask` into a compacted column.
    fn gather(&self, mask: &SelectionMask) -> ColumnChunk {
        fn scalars<T: Clone>(
            values: &[T],
            nulls: &NullBitmap,
            mask: &SelectionMask,
        ) -> (Vec<T>, NullBitmap) {
            let mut out_values = Vec::with_capacity(mask.count_selected());
            let mut out_nulls = NullBitmap::new();
            for i in mask.selected_indices() {
                out_values.push(values[i].clone());
                out_nulls.push(nulls.is_null(i));
            }
            (out_values, out_nulls)
        }

        fn arrays<T: Clone>(
            values: &[T],
            offsets: &[usize],
            nulls: &NullBitmap,
            mask: &SelectionMask,
        ) -> (Vec<T>, Vec<usize>, NullBitmap) {
            let mut out_values = Vec::new();
            let mut out_offsets = vec![0];
            let mut out_nulls = NullBitmap::new();
            for i in mask.selected_indices() {
                out_values.extend_from_slice(&values[offsets[i]..offsets[i + 1]]);
                out_offsets.push(out_values.len());
                out_nulls.push(nulls.is_null(i));
            }
            (out_values, out_offsets, out_nulls)
        }

        match self {
            ColumnChunk::Double { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, mask);
                ColumnChunk::Double { values, nulls }
            }
            ColumnChunk::Int { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, mask);
                ColumnChunk::Int { values, nulls }
            }
            ColumnChunk::Bool { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, mask);
                ColumnChunk::Bool { values, nulls }
            }
            ColumnChunk::Text { values, nulls } => {
                let (values, nulls) = scalars(values, nulls, mask);
                ColumnChunk::Text { values, nulls }
            }
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            } => {
                let (values, offsets, nulls) = arrays(values, offsets, nulls, mask);
                ColumnChunk::DoubleArray {
                    values,
                    offsets,
                    nulls,
                }
            }
            ColumnChunk::IntArray {
                values,
                offsets,
                nulls,
            } => {
                let (values, offsets, nulls) = arrays(values, offsets, nulls, mask);
                ColumnChunk::IntArray {
                    values,
                    offsets,
                    nulls,
                }
            }
            ColumnChunk::TextArray {
                values,
                offsets,
                nulls,
            } => {
                let (values, offsets, nulls) = arrays(values, offsets, nulls, mask);
                ColumnChunk::TextArray {
                    values,
                    offsets,
                    nulls,
                }
            }
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnChunk::Double { values, nulls } => {
                values.clear();
                nulls.clear();
            }
            ColumnChunk::Int { values, nulls } => {
                values.clear();
                nulls.clear();
            }
            ColumnChunk::Bool { values, nulls } => {
                values.clear();
                nulls.clear();
            }
            ColumnChunk::Text { values, nulls } => {
                values.clear();
                nulls.clear();
            }
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            } => {
                values.clear();
                offsets.clear();
                offsets.push(0);
                nulls.clear();
            }
            ColumnChunk::IntArray {
                values,
                offsets,
                nulls,
            } => {
                values.clear();
                offsets.clear();
                offsets.push(0);
                nulls.clear();
            }
            ColumnChunk::TextArray {
                values,
                offsets,
                nulls,
            } => {
                values.clear();
                offsets.clear();
                offsets.push(0);
                nulls.clear();
            }
        }
    }
}

/// Borrowed view of a `double precision` scalar column.
#[derive(Debug, Clone, Copy)]
pub struct DoubleColumn<'a> {
    /// One value per row (NULL rows hold `0.0` — consult `nulls`).
    pub values: &'a [f64],
    /// Validity bitmap.
    pub nulls: &'a NullBitmap,
}

/// Borrowed view of a flattened `double precision[]` column.
#[derive(Debug, Clone, Copy)]
pub struct DoubleArrayColumn<'a> {
    values: &'a [f64],
    offsets: &'a [usize],
    nulls: &'a NullBitmap,
}

impl<'a> DoubleArrayColumn<'a> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The array of row `i` (empty for NULL rows).
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Validity bitmap.
    pub fn nulls(&self) -> &'a NullBitmap {
        self.nulls
    }

    /// The entire flattened buffer, in row order.
    pub fn flat_values(&self) -> &'a [f64] {
        self.values
    }

    /// When every row is non-NULL and has the same width, returns that width
    /// — the precondition for handing [`DoubleArrayColumn::flat_values`] to a
    /// batched kernel as a dense row-major matrix.  A chunk of zero rows has
    /// no width; NULL or ragged rows return `None`.
    pub fn uniform_width(&self) -> Option<usize> {
        if self.is_empty() || self.nulls.any_null() {
            return None;
        }
        let width = self.offsets[1] - self.offsets[0];
        for w in self.offsets.windows(2).skip(1) {
            if w[1] - w[0] != width {
                return None;
            }
        }
        Some(width)
    }
}

/// A fixed-capacity batch of rows stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChunk {
    len: usize,
    columns: Vec<ColumnChunk>,
}

impl RowChunk {
    /// Creates an empty chunk shaped for `schema`.
    pub fn new(schema: &Schema) -> Self {
        Self {
            len: 0,
            columns: schema
                .columns()
                .iter()
                .map(|c| ColumnChunk::new(c.column_type))
                .collect(),
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chunk holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column buffers.
    pub fn columns(&self) -> &[ColumnChunk] {
        &self.columns
    }

    /// Column `idx`.
    pub fn column(&self, idx: usize) -> &ColumnChunk {
        &self.columns[idx]
    }

    /// Appends one row of values.  On failure the chunk is unchanged: a
    /// partially appended row is rolled back, so a type error part-way
    /// through a row cannot leave the columns misaligned.
    ///
    /// # Errors
    /// Returns [`EngineError::ArityMismatch`] for a wrong-arity row and a
    /// type error when a value does not match its column buffer (neither can
    /// happen for rows validated by the table's schema).
    pub fn push_values(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        for (idx, (column, value)) in self.columns.iter_mut().zip(values).enumerate() {
            if let Err(err) = column.push(value) {
                for column in &mut self.columns[..idx] {
                    column.pop();
                }
                return Err(err);
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Materializes row `i` into an existing value buffer, reusing its
    /// allocation (the per-row fallback path calls this once per row).
    pub fn read_row_into(&self, i: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.value(i)));
    }

    /// Iterates over materialized rows.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(|i| self.row(i))
    }

    /// Materializes the value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Borrows column `idx` as a contiguous `f64` slice plus validity bitmap.
    ///
    /// # Errors
    /// Returns [`EngineError::TypeMismatch`] unless the column stores
    /// `double precision` scalars.
    pub fn doubles(&self, idx: usize) -> Result<DoubleColumn<'_>> {
        match &self.columns[idx] {
            ColumnChunk::Double { values, nulls } => Ok(DoubleColumn { values, nulls }),
            other => Err(EngineError::TypeMismatch {
                expected: "double precision",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Borrows column `idx` as a flattened `double precision[]` view.
    ///
    /// # Errors
    /// Returns [`EngineError::TypeMismatch`] unless the column stores
    /// `double precision[]` arrays.
    pub fn double_arrays(&self, idx: usize) -> Result<DoubleArrayColumn<'_>> {
        match &self.columns[idx] {
            ColumnChunk::DoubleArray {
                values,
                offsets,
                nulls,
            } => Ok(DoubleArrayColumn {
                values,
                offsets,
                nulls,
            }),
            other => Err(EngineError::TypeMismatch {
                expected: "double precision[]",
                found: other.type_name().to_owned(),
            }),
        }
    }

    /// Copies the rows selected by `mask` into a new compacted chunk,
    /// preserving row order.
    pub fn gather(&self, mask: &SelectionMask) -> RowChunk {
        debug_assert_eq!(mask.len(), self.len);
        RowChunk {
            len: mask.count_selected(),
            columns: self.columns.iter().map(|c| c.gather(mask)).collect(),
        }
    }

    /// Copies the rows at `indices` into a new compacted chunk.  Cost is
    /// proportional to `indices.len()` alone, which is what the grouped scan
    /// relies on when a chunk splinters into many small groups.  Indices
    /// must be in-bounds and ascending (row order is preserved, as the
    /// equivalence contract requires).
    pub fn gather_rows(&self, indices: &[u32]) -> RowChunk {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.iter().all(|&i| (i as usize) < self.len));
        RowChunk {
            len: indices.len(),
            columns: self
                .columns
                .iter()
                .map(|c| c.gather_rows(indices))
                .collect(),
        }
    }

    /// Appends the rows of `src` at `indices` (in-bounds, ascending) to this
    /// chunk, preserving row order — the staging primitive of the grouped
    /// scan's radix partition pass, which accumulates one group-hash bucket's
    /// rows across many source chunks before batching them through
    /// `transition_chunk`.  Cost is proportional to `indices.len()` alone.
    ///
    /// # Errors
    /// Returns [`EngineError::ArityMismatch`] / [`EngineError::TypeMismatch`]
    /// when the chunks' shapes differ (never for chunks of one schema).  On
    /// error this chunk may have been partially extended; callers that need
    /// rollback should validate shapes up front.
    pub fn append_rows(&mut self, src: &RowChunk, indices: &[u32]) -> Result<()> {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.iter().all(|&i| (i as usize) < src.len));
        if self.columns.len() != src.columns.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.columns.len(),
                found: src.columns.len(),
            });
        }
        for (target, source) in self.columns.iter_mut().zip(&src.columns) {
            target.append_rows(source, indices)?;
        }
        self.len += indices.len();
        Ok(())
    }

    /// Reassembles a chunk from persisted column buffers.  Callers (the
    /// recovery path) must supply columns that all cover exactly `len` rows;
    /// the decoder validates this before calling.
    pub(crate) fn from_parts(len: usize, columns: Vec<ColumnChunk>) -> Self {
        debug_assert!(columns.iter().all(|c| c.nulls().len() == len));
        Self { len, columns }
    }

    /// Removes all rows, keeping each column's grown buffers for reuse (the
    /// grouped scan's staging buckets clear and refill across flushes).
    pub(crate) fn clear(&mut self) {
        for c in self.columns.iter_mut() {
            c.clear();
        }
        self.len = 0;
    }
}

/// One table partition: a sequence of column-major chunks.
///
/// All chunks except possibly the last hold exactly the table's chunk
/// capacity; inserts append to the last chunk and seal it when full.
///
/// Chunks live behind [`Arc`] so that cloning a segment — the heart of a
/// [`Database::table`](crate::database::Database::table) snapshot read —
/// shares every chunk's buffers instead of deep-copying them.  Sealed
/// (full) chunks are immutable by the invariant above, so sharing is
/// always safe; only the open tail chunk is ever mutated, via
/// [`Arc::make_mut`], which copies the (at most one chunk's worth of)
/// tail rows exactly when a snapshot still holds the same allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    chunks: Vec<Arc<RowChunk>>,
    rows: usize,
}

impl Segment {
    /// Creates an empty segment.
    pub(crate) fn new() -> Self {
        Self {
            chunks: Vec::new(),
            rows: 0,
        }
    }

    /// Reassembles a segment from recovered chunks (persisted sealed chunks
    /// followed by the manifest's tail chunk), recomputing the row count.
    pub(crate) fn from_chunks(chunks: Vec<Arc<RowChunk>>) -> Self {
        let rows = chunks.iter().map(|c| c.len()).sum();
        Self { chunks, rows }
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the segment has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The chunks, in insertion order.
    pub fn chunks(&self) -> &[Arc<RowChunk>] {
        &self.chunks
    }

    /// Iterates over materialized rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.chunks.iter().flat_map(|c| c.rows())
    }

    /// Appends a schema-validated row.
    pub(crate) fn push(
        &mut self,
        schema: &Schema,
        values: &[Value],
        chunk_capacity: usize,
    ) -> Result<()> {
        let needs_new_chunk = match self.chunks.last() {
            None => true,
            Some(last) => last.len() >= chunk_capacity,
        };
        if needs_new_chunk {
            self.chunks.push(Arc::new(RowChunk::new(schema)));
        }
        // Copy-on-write: clones the open tail chunk only when a snapshot
        // still shares it; sealed chunks are never reached here.
        Arc::make_mut(self.chunks.last_mut().expect("chunk just ensured")).push_values(values)?;
        self.rows += 1;
        Ok(())
    }

    /// Removes all rows, keeping the segment itself.
    pub(crate) fn clear(&mut self) {
        // Keep one cleared chunk to reuse its buffers on the next insert —
        // unless a snapshot still shares it, in which case drop it (the
        // snapshot keeps the rows; clearing in place would corrupt it).
        self.chunks.truncate(1);
        match self.chunks.first_mut().map(Arc::get_mut) {
            Some(Some(first)) => first.clear(),
            Some(None) => self.chunks.clear(),
            None => {}
        }
        self.rows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
            Column::new("tag", ColumnType::Text),
        ])
    }

    fn sample_chunk() -> RowChunk {
        let s = schema();
        let mut chunk = RowChunk::new(&s);
        chunk
            .push_values(row![1.0, vec![1.0, 2.0], "a"].values())
            .unwrap();
        chunk
            .push_values(&[Value::Null, Value::Null, Value::Null])
            .unwrap();
        chunk
            .push_values(row![3.0, vec![5.0, 6.0], "c"].values())
            .unwrap();
        chunk
    }

    #[test]
    fn null_bitmap_tracks_validity() {
        let mut b = NullBitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.any_null());
        assert_eq!(b.null_count(), 44);
        assert!(b.is_null(0));
        assert!(!b.is_null(1));
        assert!(b.is_null(129));
        assert!(!NullBitmap::new().any_null());
    }

    #[test]
    fn column_major_layout_and_materialization() {
        let chunk = sample_chunk();
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.arity(), 3);

        let y = chunk.doubles(0).unwrap();
        assert_eq!(y.values, &[1.0, 0.0, 3.0]);
        assert!(y.nulls.is_null(1));

        let x = chunk.double_arrays(1).unwrap();
        assert_eq!(x.len(), 3);
        assert_eq!(x.row(0), &[1.0, 2.0]);
        assert_eq!(x.row(1), &[] as &[f64]);
        assert_eq!(x.row(2), &[5.0, 6.0]);
        assert_eq!(x.flat_values(), &[1.0, 2.0, 5.0, 6.0]);
        assert_eq!(x.uniform_width(), None); // NULL row breaks uniformity

        assert_eq!(chunk.row(0), row![1.0, vec![1.0, 2.0], "a"]);
        assert_eq!(chunk.value(1, 0), Value::Null);
        assert_eq!(chunk.value(2, 2), Value::Text("c".into()));
        assert_eq!(chunk.rows().count(), 3);

        // Wrong-type accessors fail like `Value::as_*` does.
        assert!(chunk.doubles(1).is_err());
        assert!(chunk.double_arrays(0).is_err());
    }

    #[test]
    fn uniform_width_on_dense_data() {
        let s = schema();
        let mut chunk = RowChunk::new(&s);
        for i in 0..10 {
            chunk
                .push_values(row![i as f64, vec![i as f64, 1.0, 2.0], "t"].values())
                .unwrap();
        }
        let x = chunk.double_arrays(1).unwrap();
        assert_eq!(x.uniform_width(), Some(3));
        assert_eq!(x.flat_values().len(), 30);
    }

    #[test]
    fn selection_masks_combine() {
        let mut even = SelectionMask::none(100);
        for i in (0..100).step_by(2) {
            even.set(i, true);
        }
        assert_eq!(even.count_selected(), 50);
        assert!(even.is_selected(0));
        assert!(!even.is_selected(1));

        let all = SelectionMask::all(100);
        assert!(all.is_all_selected());
        assert_eq!(all.count_selected(), 100);

        let mut both = even.clone();
        both.and_with(&all);
        assert_eq!(both, even);

        let mut odd = even.clone();
        odd.negate();
        assert_eq!(odd.count_selected(), 50);
        assert!(odd.is_selected(1));

        let mut either = even.clone();
        either.or_with(&odd);
        assert!(either.is_all_selected());

        // Tail bits beyond len stay cleared after negate.
        let mut tiny = SelectionMask::none(3);
        tiny.negate();
        assert_eq!(tiny.count_selected(), 3);

        // The index iterator agrees with the bit tests, across word
        // boundaries and for empty masks.
        let indices: Vec<usize> = even.selected_indices().collect();
        assert_eq!(indices.len(), 50);
        assert!(indices.iter().all(|i| i % 2 == 0));
        assert_eq!(indices, {
            let mut sorted = indices.clone();
            sorted.sort_unstable();
            sorted
        });
        assert_eq!(SelectionMask::none(100).selected_indices().count(), 0);
    }

    #[test]
    fn gather_compacts_selected_rows() {
        let chunk = sample_chunk();
        let mut mask = SelectionMask::none(3);
        mask.set(0, true);
        mask.set(2, true);
        let compact = chunk.gather(&mask);
        assert_eq!(compact.len(), 2);
        assert_eq!(compact.row(0), row![1.0, vec![1.0, 2.0], "a"]);
        assert_eq!(compact.row(1), row![3.0, vec![5.0, 6.0], "c"]);
        let x = compact.double_arrays(1).unwrap();
        assert_eq!(x.uniform_width(), Some(2));
        assert_eq!(x.flat_values(), &[1.0, 2.0, 5.0, 6.0]);

        // Index-based gather produces the identical chunk.
        let by_indices = chunk.gather_rows(&[0, 2]);
        assert_eq!(by_indices, compact);
        assert!(chunk.gather_rows(&[]).is_empty());
    }

    #[test]
    fn append_rows_stages_across_source_chunks() {
        let s = schema();
        let mut source_a = RowChunk::new(&s);
        source_a
            .push_values(row![1.0, vec![1.0, 2.0], "a"].values())
            .unwrap();
        source_a
            .push_values(&[Value::Null, Value::Null, Value::Null])
            .unwrap();
        source_a
            .push_values(row![3.0, vec![5.0, 6.0], "c"].values())
            .unwrap();
        let mut source_b = RowChunk::new(&s);
        source_b
            .push_values(row![4.0, vec![7.0], "d"].values())
            .unwrap();

        let mut staged = RowChunk::new(&s);
        staged.append_rows(&source_a, &[0, 2]).unwrap();
        staged.append_rows(&source_b, &[0]).unwrap();
        staged.append_rows(&source_a, &[1]).unwrap();
        assert_eq!(staged.len(), 4);
        assert_eq!(staged.row(0), row![1.0, vec![1.0, 2.0], "a"]);
        assert_eq!(staged.row(1), row![3.0, vec![5.0, 6.0], "c"]);
        assert_eq!(staged.row(2), row![4.0, vec![7.0], "d"]);
        assert_eq!(staged.value(3, 0), Value::Null);
        assert!(staged.double_arrays(1).unwrap().nulls().is_null(3));
        // Appending nothing is a no-op.
        staged.append_rows(&source_b, &[]).unwrap();
        assert_eq!(staged.len(), 4);
        // Shape mismatches are rejected.
        let narrow = Schema::new(vec![Column::new("y", ColumnType::Double)]);
        let mut other = RowChunk::new(&narrow);
        assert!(other.append_rows(&source_a, &[0]).is_err());
    }

    #[test]
    fn segments_seal_chunks_at_capacity() {
        let s = schema();
        let mut seg = Segment::new();
        for i in 0..10 {
            seg.push(&s, row![i as f64, vec![i as f64], "t"].values(), 4)
                .unwrap();
        }
        assert_eq!(seg.len(), 10);
        assert_eq!(seg.chunks().len(), 3);
        assert_eq!(seg.chunks()[0].len(), 4);
        assert_eq!(seg.chunks()[2].len(), 2);
        let ys: Vec<f64> = seg.iter().map(|r| r.get(0).as_double().unwrap()).collect();
        assert_eq!(ys, (0..10).map(|i| i as f64).collect::<Vec<_>>());
        seg.clear();
        assert!(seg.is_empty());
        assert_eq!(seg.chunks().len(), 1);
        assert_eq!(seg.chunks()[0].len(), 0);
    }

    #[test]
    fn failed_push_rolls_back_the_partial_row() {
        let s = schema(); // (Double, DoubleArray, Text)
        let mut chunk = RowChunk::new(&s);
        chunk
            .push_values(row![1.0, vec![1.0, 2.0], "a"].values())
            .unwrap();
        // Column 0 and 1 accept their values; column 2 fails -> the whole
        // row must be rolled back, leaving the chunk exactly as before.
        let before = chunk.clone();
        let err = chunk.push_values(&[
            Value::Double(9.0),
            Value::DoubleArray(vec![7.0]),
            Value::Int(3),
        ]);
        assert!(err.is_err());
        assert_eq!(chunk, before);
        // Wrong arity is rejected up front.
        assert!(matches!(
            chunk.push_values(&[Value::Double(1.0)]),
            Err(EngineError::ArityMismatch { .. })
        ));
        assert_eq!(chunk, before);
        // The chunk still accepts valid rows afterwards, correctly aligned.
        chunk
            .push_values(row![2.0, vec![3.0], "b"].values())
            .unwrap();
        assert_eq!(chunk.row(1), row![2.0, vec![3.0], "b"]);
    }

    #[test]
    fn int_values_coerce_into_double_columns_once() {
        let s = Schema::new(vec![Column::new("v", ColumnType::Double)]);
        let mut chunk = RowChunk::new(&s);
        chunk.push_values(&[Value::Int(7)]).unwrap();
        let v = chunk.doubles(0).unwrap();
        assert_eq!(v.values, &[7.0]);
        assert_eq!(chunk.value(0, 0), Value::Double(7.0));
    }
}
