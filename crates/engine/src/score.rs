//! In-engine model serving: the scoring half of the MADlib calling
//! convention.
//!
//! Training (PRs 3–7) runs inside the engine — one `Session::train` call per
//! model, executed as chunked, work-stealing scans.  This module gives
//! *prediction* the same treatment, instead of leaving it as ad-hoc per-row
//! `predict` loops outside the scan pipeline:
//!
//! - [`Scorer`] is the serving analogue of [`crate::aggregate::Aggregate`]: a
//!   per-row [`Scorer::predict_row`] contract plus an optional vectorized
//!   [`Scorer::predict_chunk`] override that must be **bit-identical** to the
//!   row loop (the method library rides the `batch_dot` /
//!   `batch_closest_column` kernel tiers for its overrides).
//! - [`Dataset::score`] runs a scorer over the dataset's filter-surviving
//!   rows as a chunked, work-stealing scan pass, returning one prediction
//!   [`Value`] per row in segment-then-row order;
//!   [`Dataset::score_into`] materializes the predictions as a one-column
//!   table registered in the catalog (segment placement preserved).
//! - [`Dataset::score_per_group`] serves a *grouped* registry
//!   ([`GroupScorers`], e.g. a `train_grouped` output from the model
//!   catalog): each row routes to its composite-[`GroupKey`] group's model,
//!   bit-identical to filtering each group out and scoring it separately.
//! - [`Dataset::top_k_by_score`] is k-nearest-neighbour / vector-similarity
//!   search over a `double precision[]` column on the same batched kernels —
//!   the first pure *serving* workload with no training step at all.

use crate::chunk::{ColumnChunk, RowChunk};
use crate::database::Database;
use crate::dataset::Dataset;
use crate::error::{EngineError, Result};
use crate::executor::ExecutionMode;
use crate::group::GroupKey;
use crate::row::Row;
use crate::scan;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;
use madlib_linalg::kernels;
use std::collections::HashMap;

/// A model that can score rows — the serving-side counterpart of
/// [`crate::aggregate::Aggregate`].
///
/// Implementations define the per-row contract ([`Scorer::predict_row`]);
/// [`Scorer::predict_chunk`] has a default per-row fallback and may be
/// overridden with a vectorized implementation, which **must produce
/// bit-identical predictions (and identical errors) to the row loop** — the
/// same contract the aggregate `transition_chunk` overrides obey.  That
/// bit-identity is what lets [`Dataset::score`] switch between execution
/// modes, steal granularities and kernel tiers without changing results.
pub trait Scorer: Sync {
    /// Column type of the predictions this scorer emits (the schema of the
    /// materialized predictions column).
    fn output_type(&self) -> ColumnType;

    /// Scores one materialized row.
    ///
    /// # Errors
    /// Implementation-defined (e.g. a feature-width mismatch).
    fn predict_row(&self, row: &Row, schema: &Schema) -> Result<Value>;

    /// Scores every row of a column-major chunk, appending exactly
    /// `chunk.len()` predictions to `out` in row order.
    ///
    /// The default delegates to [`Scorer::predict_row`] row by row; override
    /// it to batch through vectorized kernels (bit-identically).
    ///
    /// # Errors
    /// Must fail exactly when (and how) the per-row loop would fail first.
    fn predict_chunk(&self, chunk: &RowChunk, schema: &Schema, out: &mut Vec<Value>) -> Result<()> {
        predict_chunk_rows(self, chunk, schema, out)
    }
}

/// The default per-row scoring loop over a chunk — public so vectorized
/// [`Scorer::predict_chunk`] overrides can fall back to it verbatim for the
/// shapes their kernels cannot batch (NULL-bearing or ragged feature
/// columns), keeping the fallback path shared instead of re-implemented.
///
/// # Errors
/// Propagates the first [`Scorer::predict_row`] error in row order.
pub fn predict_chunk_rows<S: Scorer + ?Sized>(
    scorer: &S,
    chunk: &RowChunk,
    schema: &Schema,
    out: &mut Vec<Value>,
) -> Result<()> {
    let mut values = Vec::with_capacity(chunk.arity());
    out.reserve(chunk.len());
    for i in 0..chunk.len() {
        chunk.read_row_into(i, &mut values);
        let row = Row::new(std::mem::take(&mut values));
        out.push(scorer.predict_row(&row, schema)?);
        values = row.into_values();
    }
    Ok(())
}

/// A named per-group scorer registry: one scorer per composite [`GroupKey`],
/// sorted by key — the servable shape of a `train_grouped` output.
/// [`Dataset::score_per_group`] routes each row to its group's scorer and
/// reports a missing group as a typed [`EngineError::ModelNotFound`] carrying
/// the registry's name.
#[derive(Debug, Clone)]
pub struct GroupScorers<S> {
    name: String,
    scorers: Vec<(GroupKey, S)>,
}

impl<S> GroupScorers<S> {
    /// Builds a registry from `(key, scorer)` pairs, sorting by key.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] when two pairs share a key —
    /// routing would be ambiguous.
    pub fn new(name: impl Into<String>, mut scorers: Vec<(GroupKey, S)>) -> Result<Self> {
        scorers.sort_by(|a, b| a.0.cmp(&b.0));
        if let Some(pair) = scorers.windows(2).find(|pair| pair[0].0 == pair[1].0) {
            return Err(EngineError::invalid(format!(
                "duplicate group key {:?} in grouped scorer registry",
                pair[0].0
            )));
        }
        Ok(Self {
            name: name.into(),
            scorers,
        })
    }

    /// The registry's name (used in [`EngineError::ModelNotFound`] errors).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.scorers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scorers.is_empty()
    }

    /// The scorer for `key`, if present (binary search over the sorted keys).
    pub fn get(&self, key: &GroupKey) -> Option<&S> {
        self.scorers
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|idx| &self.scorers[idx].1)
    }

    /// Iterates `(key, scorer)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = &(GroupKey, S)> {
        self.scorers.iter()
    }
}

/// Similarity metric for [`Dataset::top_k_by_score`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Similarity {
    /// Inner product `x · q` — **higher** scores rank first (the SQL
    /// dot-product-UDF shape; equivalent to cosine ranking for normalized
    /// vectors).  Rides `batch_dot`.
    Dot,
    /// Squared Euclidean distance `‖x − q‖²` — **lower** scores rank first
    /// (k-nearest-neighbour).  Rides `batch_squared_distances`.
    Euclidean,
}

impl Similarity {
    /// Whether `a` ranks strictly better than `b` under this metric.
    /// Uses `f64::total_cmp`, so NaN scores order deterministically (they
    /// rank worst under [`Similarity::Dot`] and best-after-nothing under
    /// [`Similarity::Euclidean`]'s ascending order — but never flap).
    fn ranks_before(self, a: f64, b: f64) -> bool {
        match self {
            Similarity::Dot => a.total_cmp(&b).is_gt(),
            Similarity::Euclidean => a.total_cmp(&b).is_lt(),
        }
    }

    /// The per-row reference score — the formulation the batched kernels are
    /// bit-identical to by contract (left-to-right accumulation).
    fn score_row(self, x: &[f64], query: &[f64]) -> f64 {
        match self {
            Similarity::Dot => x.iter().zip(query).map(|(a, b)| a * b).sum(),
            Similarity::Euclidean => x
                .iter()
                .zip(query)
                .map(|(a, b)| {
                    let d = a - b;
                    d * d
                })
                .sum(),
        }
    }

    /// The batched kernel for uniform-width, NULL-free chunks.
    fn score_batch(self, xs: &[f64], query: &[f64], out: &mut [f64]) {
        match self {
            Similarity::Dot => kernels::batch_dot(xs, query, out),
            Similarity::Euclidean => kernels::batch_squared_distances(xs, query, out),
        }
    }
}

/// One k-NN candidate while a segment scan is in flight.
struct Candidate {
    score: f64,
    /// Deterministic tie-break key: (segment, surviving-row ordinal within
    /// the segment scan) — a pure function of the dataset, never of
    /// scheduling.
    segment: usize,
    ordinal: usize,
    row: Row,
}

impl Candidate {
    /// Total order: better score first, then scan position.  Gives every
    /// candidate a distinct rank, so top-k results are deterministic even
    /// with tied scores.
    fn ranks_before(&self, other: &Candidate, metric: Similarity) -> bool {
        if metric.ranks_before(self.score, other.score) {
            return true;
        }
        if metric.ranks_before(other.score, self.score) {
            return false;
        }
        (self.segment, self.ordinal) < (other.segment, other.ordinal)
    }
}

/// Inserts a candidate into a best-first list bounded at `k` entries.
fn push_candidate(best: &mut Vec<Candidate>, candidate: Candidate, k: usize, metric: Similarity) {
    let at = best.partition_point(|c| c.ranks_before(&candidate, metric));
    if at < k {
        best.insert(at, candidate);
        best.truncate(k);
    }
}

impl Dataset<'_> {
    /// Rejects grouped datasets from the ungrouped serving terminals with
    /// guidance pointing at the grouped entry point.
    fn require_ungrouped_serving(&self, operation: &str) -> Result<()> {
        if self.is_grouped() {
            return Err(EngineError::invalid(format!(
                "{operation} over a grouped dataset; use score_per_group with a \
                 GroupScorers registry (e.g. Database::models().grouped_scorers) \
                 for grouped scoring"
            )));
        }
        Ok(())
    }

    /// Scores every filter-surviving row with `scorer`, returning one
    /// prediction per row in segment-then-row order (the same order
    /// [`Dataset::collect_rows`] yields rows, so predictions zip with rows).
    ///
    /// Runs as a chunked, work-stealing scan pass: under the chunked
    /// executor each compacted chunk goes through
    /// [`Scorer::predict_chunk`] (vectorized overrides ride the kernel
    /// tiers), under the row-at-a-time executor each row goes through
    /// [`Scorer::predict_row`] — bit-identical by the scorer contract.
    /// Terminal operation; requires an ungrouped dataset.
    ///
    /// # Errors
    /// Propagates predicate and scorer errors; errors on a grouped dataset.
    pub fn score<S: Scorer + ?Sized>(&self, scorer: &S) -> Result<Vec<Value>> {
        self.require_ungrouped_serving("score")?;
        let per_segment = self.score_segments(scorer)?;
        let mut out = Vec::with_capacity(per_segment.iter().map(Vec::len).sum());
        for segment in per_segment {
            out.extend(segment);
        }
        Ok(out)
    }

    /// Scores every filter-surviving row and materializes the predictions as
    /// a new one-column (`prediction`, [`Scorer::output_type`]) table
    /// registered in `database` under `table_name` — the engine-resident
    /// `CREATE TABLE predictions AS SELECT predict(...)` shape.  Each
    /// prediction lands in the segment its source row came from, so
    /// downstream scans over the predictions table parallelize like the
    /// source.  Terminal operation; requires an ungrouped dataset.
    ///
    /// # Errors
    /// Propagates predicate and scorer errors; errors on a grouped dataset
    /// and on a `table_name` collision
    /// ([`EngineError::TableAlreadyExists`]).
    pub fn score_into<S: Scorer + ?Sized>(
        &self,
        scorer: &S,
        database: &Database,
        table_name: &str,
    ) -> Result<()> {
        self.require_ungrouped_serving("score_into")?;
        let per_segment = self.score_segments(scorer)?;
        let schema = Schema::new(vec![Column::new("prediction", scorer.output_type())]);
        let mut table = Table::new(schema, self.table().num_segments())?;
        for (seg, predictions) in per_segment.into_iter().enumerate() {
            for prediction in predictions {
                table.insert_into_segment(seg, Row::new(vec![prediction]))?;
            }
        }
        database.register_table(table_name, table)
    }

    /// The shared scan pass behind [`Dataset::score`] and
    /// [`Dataset::score_into`]: one prediction vector per segment, in
    /// per-segment row order.  Chunk-range stealing spreads hot segments
    /// across workers; outputs concatenate in range order, which is
    /// unconditionally identical to the whole-segment scan.
    fn score_segments<S: Scorer + ?Sized>(&self, scorer: &S) -> Result<Vec<Vec<Value>>> {
        let schema = self.schema();
        let filter = self.filter_predicate();
        let mode = self.executor().mode();
        let granularity = match mode {
            ExecutionMode::Chunked => scan::StealGranularity::ChunkRange,
            ExecutionMode::RowAtATime => scan::StealGranularity::Segment,
        };
        let per_segment = scan::run_per_segment_ranged(
            self.table(),
            self.executor().is_parallel(),
            granularity,
            |range, segment| {
                let mut out = Vec::new();
                match mode {
                    ExecutionMode::Chunked => {
                        scan::scan_chunks(range.chunks(segment), schema, filter, |batch| {
                            scorer.predict_chunk(batch.chunk(), schema, &mut out)
                        })?;
                    }
                    ExecutionMode::RowAtATime => {
                        scan::scan_segment_rows(segment, schema, filter, |row| {
                            out.push(scorer.predict_row(row, schema)?);
                            Ok(())
                        })?;
                    }
                }
                Ok(out)
            },
            |mut left, right: Vec<Value>| {
                left.extend(right);
                left
            },
        );
        per_segment.into_iter().collect()
    }

    /// Scores every filter-surviving row through its *group's* scorer: the
    /// row's composite [`GroupKey`] (over the dataset's `group_by` columns)
    /// selects the model in `scorers`, and predictions return in
    /// segment-then-row order — **bit-identical to filtering each group out
    /// and scoring it with its model separately**, because per-group chunk
    /// gathers preserve row order and the scorer contract is per-row pure.
    ///
    /// Under the chunked executor, single-group chunks (the common,
    /// clustered case) batch straight through [`Scorer::predict_chunk`];
    /// mixed chunks are counting-sorted by group, each group's rows gathered
    /// into a compacted sub-chunk, batch-scored, and the predictions
    /// scattered back to their row positions.
    ///
    /// # Errors
    /// Propagates predicate, column-lookup and scorer errors; errors when
    /// the dataset has no grouping columns or lists one twice, and with
    /// [`EngineError::ModelNotFound`] when a surviving row's group has no
    /// scorer in the registry.
    pub fn score_per_group<S: Scorer>(&self, scorers: &GroupScorers<S>) -> Result<Vec<Value>> {
        let schema = self.schema();
        let group_indices = self.group_column_indices()?;
        let group_indices = group_indices.as_slice();
        let filter = self.filter_predicate();
        let mode = self.executor().mode();
        let granularity = match mode {
            ExecutionMode::Chunked => scan::StealGranularity::ChunkRange,
            ExecutionMode::RowAtATime => scan::StealGranularity::Segment,
        };
        let per_segment = scan::run_per_segment_ranged(
            self.table(),
            self.executor().is_parallel(),
            granularity,
            |range, segment| {
                let mut out = Vec::new();
                match mode {
                    ExecutionMode::Chunked => score_chunks_grouped(
                        scorers,
                        range.chunks(segment),
                        schema,
                        group_indices,
                        filter,
                        &mut out,
                    )?,
                    ExecutionMode::RowAtATime => {
                        let mut cache: HashMap<GroupKey, usize> = HashMap::new();
                        let mut resolved: Vec<&S> = Vec::new();
                        scan::scan_segment_rows(segment, schema, filter, |row| {
                            let key = match group_indices {
                                [idx] => GroupKey::from_value(row.get(*idx)),
                                many => GroupKey::from_values(many.iter().map(|&i| row.get(i))),
                            };
                            let slot = match cache.get(&key) {
                                Some(&slot) => slot,
                                None => {
                                    let scorer = scorers
                                        .get(&key)
                                        .ok_or_else(|| model_not_found(scorers.name(), &key))?;
                                    resolved.push(scorer);
                                    cache.insert(key, resolved.len() - 1);
                                    resolved.len() - 1
                                }
                            };
                            out.push(resolved[slot].predict_row(row, schema)?);
                            Ok(())
                        })?;
                    }
                }
                Ok(out)
            },
            |mut left, right: Vec<Value>| {
                left.extend(right);
                left
            },
        );
        let mut out = Vec::with_capacity(self.table().row_count());
        for res in per_segment {
            out.extend(res?);
        }
        Ok(out)
    }

    /// The `k` best-scoring rows of the `column` feature vectors against
    /// `query` — k-nearest-neighbour ([`Similarity::Euclidean`]) or
    /// maximum-inner-product ([`Similarity::Dot`]) search, returned
    /// best-first as `(row, score)` pairs.
    ///
    /// Runs as a segment-parallel scan on the batched distance/dot kernels
    /// (per-row fallback for NULL-bearing or ragged chunks, bit-identical by
    /// the kernel contracts).  Rows whose `column` value is NULL are skipped;
    /// ties and NaN scores break deterministically by scan position, so
    /// results never depend on scheduling or execution mode.  Honors the
    /// dataset's filter.  Terminal operation; requires an ungrouped dataset.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidArgument`] for `k == 0`, an empty
    /// `query`, or a non-NULL row whose vector width differs from the
    /// query's; [`EngineError::ColumnNotFound`] / type errors for a missing
    /// or non-`double precision[]` column; errors on a grouped dataset.
    pub fn top_k_by_score(
        &self,
        column: &str,
        query: &[f64],
        k: usize,
        metric: Similarity,
    ) -> Result<Vec<(Row, f64)>> {
        self.require_ungrouped_serving("top_k_by_score")?;
        if k == 0 {
            return Err(EngineError::invalid("top_k_by_score: k must be positive"));
        }
        if query.is_empty() {
            return Err(EngineError::invalid(
                "top_k_by_score: query vector must be non-empty",
            ));
        }
        let schema = self.schema();
        let column_idx = schema.index_of(column)?;
        let filter = self.filter_predicate();
        let mode = self.executor().mode();
        let per_segment = scan::run_per_segment(
            self.table(),
            self.executor().is_parallel(),
            |seg, segment| {
                let mut best: Vec<Candidate> = Vec::new();
                let mut ordinal = 0usize;
                match mode {
                    ExecutionMode::Chunked => {
                        let mut scores: Vec<f64> = Vec::new();
                        scan::scan_chunks(segment.chunks(), schema, filter, |batch| {
                            let chunk = batch.chunk();
                            let arrays = chunk.double_arrays(column_idx)?;
                            if !arrays.nulls().any_null()
                                && arrays.uniform_width() == Some(query.len())
                            {
                                scores.resize(chunk.len(), 0.0);
                                metric.score_batch(arrays.flat_values(), query, &mut scores);
                                for (i, &score) in scores.iter().enumerate() {
                                    consider_knn_row(
                                        &mut best,
                                        &mut ordinal,
                                        chunk,
                                        i,
                                        score,
                                        seg,
                                        k,
                                        metric,
                                    );
                                }
                            } else {
                                for i in 0..chunk.len() {
                                    if arrays.nulls().is_null(i) {
                                        ordinal += 1;
                                        continue;
                                    }
                                    let x = arrays.row(i);
                                    check_query_width(x, query)?;
                                    let score = metric.score_row(x, query);
                                    consider_knn_row(
                                        &mut best,
                                        &mut ordinal,
                                        chunk,
                                        i,
                                        score,
                                        seg,
                                        k,
                                        metric,
                                    );
                                }
                            }
                            Ok(())
                        })?;
                    }
                    ExecutionMode::RowAtATime => {
                        scan::scan_segment_rows(segment, schema, filter, |row| {
                            let value = row.get(column_idx);
                            if value.is_null() {
                                ordinal += 1;
                                return Ok(());
                            }
                            let x = value.as_double_array()?;
                            check_query_width(x, query)?;
                            let candidate = Candidate {
                                score: metric.score_row(x, query),
                                segment: seg,
                                ordinal,
                                row: row.clone(),
                            };
                            ordinal += 1;
                            push_candidate(&mut best, candidate, k, metric);
                            Ok(())
                        })?;
                    }
                }
                Ok(best)
            },
        );
        // Merge the per-segment top-k lists (each sorted best-first) into
        // the global best-first list and truncate to k.
        let mut merged: Vec<Candidate> = Vec::new();
        for res in per_segment {
            for candidate in res? {
                push_candidate(&mut merged, candidate, k, metric);
            }
        }
        Ok(merged.into_iter().map(|c| (c.row, c.score)).collect())
    }
}

/// Errors when a non-NULL vector's width differs from the query's.
fn check_query_width(x: &[f64], query: &[f64]) -> Result<()> {
    if x.len() != query.len() {
        return Err(EngineError::invalid(format!(
            "top_k_by_score: row vector has length {}, query has length {}",
            x.len(),
            query.len()
        )));
    }
    Ok(())
}

/// Offers one scored chunk row to the k-NN candidate list, materializing the
/// row only when it actually enters the list.
#[allow(clippy::too_many_arguments)]
fn consider_knn_row(
    best: &mut Vec<Candidate>,
    ordinal: &mut usize,
    chunk: &RowChunk,
    i: usize,
    score: f64,
    seg: usize,
    k: usize,
    metric: Similarity,
) {
    let candidate = Candidate {
        score,
        segment: seg,
        ordinal: *ordinal,
        row: Row::new(Vec::new()),
    };
    *ordinal += 1;
    let at = best.partition_point(|c| c.ranks_before(&candidate, metric));
    if at < k {
        let mut candidate = candidate;
        candidate.row = chunk.row(i);
        best.insert(at, candidate);
        best.truncate(k);
    }
}

/// The typed missing-group error for catalog-routed scoring.
fn model_not_found(name: &str, key: &GroupKey) -> EngineError {
    EngineError::ModelNotFound {
        name: name.to_owned(),
        group: Some(format!("{key:?}")),
    }
}

/// The chunked grouped scoring pass over one range of chunks: pass 1 keys
/// every row to its scorer slot (previous-key probe first — group values
/// cluster in practice), then single-scorer chunks batch straight through
/// `predict_chunk` while mixed chunks are counting-sorted by slot, gathered
/// per group (row order preserved) and their predictions scattered back to
/// row positions.
fn score_chunks_grouped<S: Scorer>(
    scorers: &GroupScorers<S>,
    chunks: &[std::sync::Arc<RowChunk>],
    schema: &Schema,
    group_indices: &[usize],
    filter: Option<&crate::expr::Predicate>,
    out: &mut Vec<Value>,
) -> Result<()> {
    // Range-level directory: key → dense slot into `resolved` scorers.
    let mut slots: HashMap<GroupKey, u32> = HashMap::new();
    let mut resolved: Vec<&S> = Vec::new();
    // Per-chunk scratch, reused across chunks (same shape as the grouped
    // aggregation pass): each row's slot, the chunk's distinct slots in
    // first-seen order with counts, and an epoch marker per slot.
    let mut row_slots: Vec<u32> = Vec::new();
    let mut chunk_groups: Vec<(u32, u32)> = Vec::new();
    let mut chunk_group_of_slot: Vec<u32> = Vec::new();
    let mut scatter: Vec<u32> = Vec::new();
    let mut offsets: Vec<u32> = Vec::new();
    let mut group_predictions: Vec<Value> = Vec::new();

    scan::scan_chunks(chunks, schema, filter, |batch| {
        let chunk = batch.chunk();
        let rows = chunk.len();
        let key_columns: Vec<&ColumnChunk> =
            group_indices.iter().map(|&c| chunk.column(c)).collect();

        row_slots.clear();
        for group in chunk_groups.drain(..) {
            chunk_group_of_slot[group.0 as usize] = u32::MAX;
        }
        let mut previous: Option<(GroupKey, u32)> = None;
        for i in 0..rows {
            let slot = match &previous {
                Some((key, slot)) if key.matches_columns(&key_columns, i) => *slot,
                _ => {
                    let key = GroupKey::from_columns(&key_columns, i);
                    let slot = match slots.get(&key) {
                        Some(&slot) => slot,
                        None => {
                            let scorer = scorers
                                .get(&key)
                                .ok_or_else(|| model_not_found(scorers.name(), &key))?;
                            let slot = resolved.len() as u32;
                            resolved.push(scorer);
                            chunk_group_of_slot.push(u32::MAX);
                            slots.insert(key.clone(), slot);
                            slot
                        }
                    };
                    previous = Some((key, slot));
                    slot
                }
            };
            row_slots.push(slot);
            let marker = &mut chunk_group_of_slot[slot as usize];
            if *marker == u32::MAX {
                *marker = chunk_groups.len() as u32;
                chunk_groups.push((slot, 0));
            }
            chunk_groups[*marker as usize].1 += 1;
        }

        if chunk_groups.len() == 1 {
            // Single-group chunk: the whole chunk is one batch.
            let slot = chunk_groups[0].0 as usize;
            return resolved[slot].predict_chunk(chunk, schema, out);
        }

        // Mixed chunk: counting-sort the row indices by group, gather each
        // group's rows (in row order) into a compacted sub-chunk, batch-
        // score it, and scatter the predictions back to row positions.
        offsets.clear();
        let mut running = 0u32;
        for &(_, count) in chunk_groups.iter() {
            offsets.push(running);
            running += count;
        }
        scatter.resize(rows, 0);
        let mut cursors = offsets.clone();
        for (i, &slot) in row_slots.iter().enumerate() {
            let g = chunk_group_of_slot[slot as usize] as usize;
            scatter[cursors[g] as usize] = i as u32;
            cursors[g] += 1;
        }
        let base = out.len();
        out.resize(base + rows, Value::Null);
        for (g, &(slot, count)) in chunk_groups.iter().enumerate() {
            let start = offsets[g] as usize;
            let indices = &scatter[start..start + count as usize];
            let sub = chunk.gather_rows(indices);
            group_predictions.clear();
            resolved[slot as usize].predict_chunk(&sub, schema, &mut group_predictions)?;
            debug_assert_eq!(group_predictions.len(), indices.len());
            for (&row_idx, prediction) in indices.iter().zip(group_predictions.drain(..)) {
                out[base + row_idx as usize] = prediction;
            }
        }
        Ok(())
    })?;
    Ok(())
}
