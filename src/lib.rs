//! Facade crate re-exporting the MADlib-rs workspace public API.
#![forbid(unsafe_code)]
pub use madlib_convex as convex;
pub use madlib_core as methods;
pub use madlib_engine as engine;
pub use madlib_linalg as linalg;
pub use madlib_sketch as sketch;
pub use madlib_stats as stats;
pub use madlib_text as text;
