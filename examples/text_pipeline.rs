//! Statistical text analytics end to end (paper Section 5.2): feature
//! extraction, CRF training through the convex framework, Viterbi and MCMC
//! inference, and approximate string matching for entity resolution.

use madlib::engine::{Column, ColumnType, Dataset, Row, Schema, Table, Value};
use madlib::methods::Session;
use madlib::text::mcmc::{gibbs_sample, McmcConfig};
use madlib::text::viterbi::viterbi_decode;
use madlib::text::{tokenize, CrfEstimator, FeatureExtractor, TrigramIndex};

fn main() {
    // One session supplies both the executor and the staging database the
    // CRF training epochs run against.
    let session = Session::in_memory(4).expect("segment count is positive");

    // --- Feature extraction ------------------------------------------------
    let extractor = FeatureExtractor::new().with_dictionary("city", ["denver", "istanbul"]);
    let sentence = tokenize("Tim Tebow visited Denver in August 2012");
    let features = extractor.extract(&sentence);
    println!("token features:");
    for (token, feats) in sentence.iter().zip(&features) {
        println!("  {token:<10} {:?}", feats.active);
    }

    // --- CRF training (labels: 0 = other, 1 = entity) ----------------------
    // Observation symbols: 0/1 → ordinary words, 2/3 → entity-like words.
    let schema = Schema::new(vec![
        Column::new("observations", ColumnType::IntArray),
        Column::new("labels", ColumnType::IntArray),
    ]);
    let mut corpus = Table::new(schema, 4).expect("table");
    for s in 0..80usize {
        let length = 6 + s % 5;
        let mut observations = Vec::new();
        let mut labels = Vec::new();
        for t in 0..length {
            let label = usize::from((t + s) % 3 == 0);
            observations.push((label * 2 + s % 2) as i64);
            labels.push(label as i64);
        }
        corpus
            .insert(Row::new(vec![
                Value::IntArray(observations),
                Value::IntArray(labels),
            ]))
            .expect("insert");
    }
    let crf = session
        .train(
            &CrfEstimator::new("observations", "labels", 2, 4).with_epochs(40),
            &Dataset::from_table(&corpus),
        )
        .expect("CRF training succeeds");

    // --- Inference ----------------------------------------------------------
    let observations = [2usize, 0, 1, 3, 0, 2];
    let (viterbi_labels, score) = viterbi_decode(&crf, &observations).expect("decode");
    println!("\nViterbi labeling of {observations:?}: {viterbi_labels:?} (score {score:.2})");
    let mcmc = gibbs_sample(
        &crf,
        &observations,
        &McmcConfig {
            samples: 500,
            burn_in: 100,
            seed: 3,
        },
    )
    .expect("sampling succeeds");
    println!("Gibbs marginal P(entity) per token:");
    for (t, marginal) in mcmc.marginals.iter().enumerate() {
        println!("  position {t}: {:.2}", marginal[1]);
    }

    // --- Entity resolution via trigram matching -----------------------------
    let mut index = TrigramIndex::new();
    for mention in [
        "Tim Tebow threw for 300 yards",
        "T. Tebow was seen at practice",
        "Peyton Manning led the drive",
        "tim tebo signs autographs",
    ] {
        index.insert(mention);
    }
    println!("\napproximate mentions of 'Tim Tebow':");
    for (id, similarity) in index.search("Tim Tebow", 0.5) {
        println!(
            "  {:.2}  {}",
            similarity,
            index.document(id).expect("document exists")
        );
    }
}
