//! Quickstart: the paper's Section 4.1 worked example, through the uniform
//! Session/Dataset API.
//!
//! Builds a small `data(y, x)` table, trains the single-pass
//! linear-regression estimator with `session.train(...)`, and prints the
//! same composite record the paper shows for
//! `SELECT (linregr(y, x)).* FROM data;` — then serves the model back
//! in-engine: the fitted model goes into the database's **model catalog**
//! by name, `session.score(...)` runs prediction as a chunked scan pass
//! over the source table (the serving half of the MADlib calling
//! convention, `linregr_predict(source_table, model, ...)`), and the k-NN
//! terminal `Dataset::top_k_by_score` answers a vector-similarity query on
//! the same batched kernels.

use madlib::engine::{row, Column, ColumnType, Database, Schema, Similarity};
use madlib::methods::regress::{LinearRegression, LinearRegressionModel};
use madlib::methods::Session;

fn main() {
    // A database with 4 "segments" (parallel workers) and a session over it.
    let db = Database::new(4).expect("segment count is positive");
    let session = Session::new(db.clone());
    let schema = Schema::new(vec![
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    db.create_table("data", schema).expect("fresh catalog");

    // y ≈ 1.73 + 2.24·x plus a little deterministic noise, echoing the
    // coefficients in the paper's example output.
    db.with_table_mut("data", |table| {
        for i in 0..1_000 {
            let x = i as f64 / 100.0;
            let noise = ((i * 37) % 11) as f64 / 11.0 - 0.5;
            table.insert(row![1.7307 + 2.2428 * x + 0.3 * noise, vec![1.0, x]])?;
        }
        Ok(())
    })
    .expect("insert succeeds");

    // The MADlib calling convention: one call naming the source table and
    // the dependent/independent columns.
    let dataset = session.dataset("data").expect("table exists");
    let model = session
        .train(&LinearRegression::new("y", "x"), &dataset)
        .expect("fit succeeds");

    println!("psql# SELECT (linregr(y, x)).* FROM data;");
    println!("-[ RECORD 1 ]+--------------------------------------------");
    println!(
        "coef         | {{{}}}",
        model
            .coef
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("r2           | {:.4}", model.r2);
    println!(
        "std_err      | {{{}}}",
        model
            .std_err
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    println!(
        "t_stats      | {{{}}}",
        model
            .t_stats
            .iter()
            .map(|c| format!("{c:.4}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    println!(
        "p_values     | {{{}}}",
        model
            .p_values
            .iter()
            .map(|c| format!("{c:.3e}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("condition_no | {:.4}", model.condition_no);
    println!();
    println!(
        "prediction for x = 5.0: {:.4}",
        model.predict(&[1.0, 5.0]).expect("width matches")
    );

    // --- Serve the model in-engine ---------------------------------------
    // Deposit the fitted model in the database's model catalog under a
    // name, then score the whole table by name: prediction runs as a
    // chunked, segment-parallel scan pass over the `batch_dot` kernel —
    // bit-identical to calling `model.predict` row by row.
    session.register_model("quickstart_linregr", model);
    let predictions = session
        .score::<LinearRegressionModel>(&dataset, "quickstart_linregr", "x")
        .expect("model is in the catalog");
    println!();
    println!("psql# SELECT linregr_predict(m.model, d.x) FROM data d, models m");
    println!(
        "      WHERE m.name = 'quickstart_linregr';  -- {} rows",
        predictions.len()
    );
    println!(
        "first prediction: {:.4}",
        predictions[0].as_double().expect("predictions are doubles")
    );

    // The k-NN terminal: the 3 rows whose feature vectors are nearest to
    // x = 5.0 (squared Euclidean distance over the same batched kernels).
    let neighbors = dataset
        .top_k_by_score("x", &[1.0, 5.0], 3, Similarity::Euclidean)
        .expect("ungrouped k-NN scan");
    println!("\n3 nearest rows to x = 5.0:");
    for (row, distance2) in &neighbors {
        println!(
            "  y = {:.4}  (squared distance {distance2:.6})",
            row.get(0).as_double().expect("y is a double")
        );
    }
}
