//! Sensor-fleet clustering: the paper's Section 4.3 k-means pattern applied
//! to a synthetic telemetry workload, plus streaming sketches over the same
//! feed (distinct devices and latency quantiles).

use madlib::engine::{Database, Dataset};
use madlib::methods::cluster::{KMeans, SeedingMethod};
use madlib::methods::datasets::gaussian_blobs;
use madlib::methods::Session;
use madlib::sketch::{FlajoletMartin, QuantileSummary};

fn main() {
    let session = Session::new(Database::new(4).expect("segment count is positive"));

    // 10 000 telemetry points in 6 dimensions drawn from 4 operating modes.
    let data = gaussian_blobs(10_000, 4, 6, 1.5, 4, 99).expect("generator succeeds");
    let model = session
        .train(
            &KMeans::new("coords", 4)
                .expect("k is positive")
                .with_seeding(SeedingMethod::KMeansPlusPlus)
                .with_max_iterations(30),
            &Dataset::from_table(&data.table),
        )
        .expect("clustering succeeds");

    println!(
        "k-means: {} iterations, converged = {}, inertia = {:.0}",
        model.iterations, model.converged, model.inertia
    );
    for (i, centroid) in model.centroids.iter().enumerate() {
        let rounded: Vec<String> = centroid.iter().map(|c| format!("{c:.1}")).collect();
        println!("  centroid {i}: [{}]", rounded.join(", "));
    }

    // Streaming descriptive statistics over the same feed.
    let mut devices = FlajoletMartin::new(64);
    let mut latencies = QuantileSummary::new(0.01);
    for (i, row) in data.table.iter().enumerate() {
        let coords = row.get(1).as_double_array().expect("coords column");
        devices.update(&format!("device_{}", i % 1_237));
        latencies.insert(coords[0].abs());
    }
    println!(
        "\ndistinct devices (Flajolet-Martin estimate): {:.0} (true 1237)",
        devices.estimate()
    );
    println!(
        "latency p50 / p95 / p99: {:.2} / {:.2} / {:.2}",
        latencies.quantile(0.5).unwrap_or(f64::NAN),
        latencies.quantile(0.95).unwrap_or(f64::NAN),
        latencies.quantile(0.99).unwrap_or(f64::NAN),
    );
}
