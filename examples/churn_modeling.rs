//! Customer-churn modeling: the "deep analytics inside the warehouse"
//! scenario from the paper's introduction, on the uniform Session/Dataset
//! API.
//!
//! A synthetic customer table is loaded into the engine, three classifiers
//! from the method library (logistic regression, C4.5 decision tree, naive
//! Bayes) are trained on it through `session.train(...)`, their holdout
//! accuracy is compared with the cross-validation and metrics utilities —
//! and then the paper's headline `grouping_cols` scenario runs: **one churn
//! model per market segment** from a single
//! `session.train_grouped(..., dataset.group_by(["region"]))` call.
//!
//! Serving runs through the engine too: every fitted model is deposited in
//! the database's **model catalog** by name, the holdout is scored with
//! `session.score(...)` as a chunked scan pass (no hand-written predict
//! loops), and the per-region registry routes each customer to their
//! region's model.

use madlib::engine::{row, Column, ColumnType, Database, Dataset, Schema, Table};
use madlib::methods::classify::{DecisionTree, DecisionTreeModel, NaiveBayes, NaiveBayesModel};
use madlib::methods::regress::{LogisticRegression, LogisticRegressionModel};
use madlib::methods::validate::{accuracy, kfold_indices};
use madlib::methods::Session;

/// Deterministic synthetic customer base: churn depends on support tickets
/// and monthly spend with a noisy threshold, and each customer belongs to a
/// market region whose churn drivers differ.
fn customer_rows(n: usize) -> Vec<(f64, Vec<f64>, &'static str, &'static str)> {
    (0..n)
        .map(|i| {
            let region = ["north", "south", "west"][i % 3];
            let tickets = (i % 9) as f64;
            let spend = 20.0 + ((i * 13) % 80) as f64;
            let tenure = ((i * 7) % 60) as f64;
            // Ticket sensitivity differs per region — the reason one global
            // model underserves segmented markets.
            let ticket_weight = match i % 3 {
                0 => 1.2,
                1 => 0.8,
                _ => 0.4,
            };
            let score = ticket_weight * tickets - 0.05 * spend - 0.02 * tenure + 1.0;
            let noise = ((i * 31) % 7) as f64 / 7.0 - 0.5;
            let churned = if score + noise > 0.0 { 1.0 } else { 0.0 };
            let label = if churned > 0.5 { "churn" } else { "stay" };
            (churned, vec![1.0, tickets, spend, tenure], label, region)
        })
        .collect()
}

fn main() {
    let session = Session::new(Database::new(4).expect("segment count is positive"));
    let rows = customer_rows(2_100);

    let numeric_schema = Schema::new(vec![
        Column::new("region", ColumnType::Text),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let labeled_schema = Schema::new(vec![
        Column::new("label", ColumnType::Text),
        Column::new("features", ColumnType::DoubleArray),
    ]);

    // 5-fold cross-validation of logistic regression.
    let folds = kfold_indices(rows.len(), 5, 42).expect("valid fold spec");
    let mut fold_accuracies = Vec::new();
    for fold in &folds {
        let mut train = Table::new(numeric_schema.clone(), 4).expect("table");
        for &i in &fold.train {
            let (y, x, _, region) = &rows[i];
            train.insert(row![*region, *y, x.clone()]).expect("insert");
        }
        let model = session
            .train(
                &LogisticRegression::new("y", "x"),
                &Dataset::from_table(&train),
            )
            .expect("fit");
        let predicted: Vec<bool> = fold
            .test
            .iter()
            .map(|&i| model.predict(&rows[i].1).expect("predict"))
            .collect();
        let actual: Vec<bool> = fold.test.iter().map(|&i| rows[i].0 > 0.5).collect();
        fold_accuracies.push(accuracy(&predicted, &actual).expect("accuracy"));
    }
    let mean_accuracy: f64 = fold_accuracies.iter().sum::<f64>() / fold_accuracies.len() as f64;
    println!("logistic regression, 5-fold CV accuracy: {mean_accuracy:.3}");

    // --- Grouped training: one churn model per market segment -------------
    // The paper's `grouping_cols`: a single call trains one logistic model
    // per region, segment-parallel over the same chunked scan pipeline.
    let mut customers = Table::new(numeric_schema, 4).expect("table");
    for (y, x, _, region) in &rows {
        customers
            .insert(row![*region, *y, x.clone()])
            .expect("insert");
    }
    let per_region = session
        .train_grouped(
            &LogisticRegression::new("y", "x"),
            &Dataset::from_table(&customers).group_by(["region"]),
        )
        .expect("grouped fit");
    println!("\nper-region churn models (grouping_cols = [region]):");
    for (region, model) in &per_region {
        println!(
            "  {:<6} ticket-coefficient {:+.3}  ({} customers, {} IRLS iterations)",
            format!("{:?}", region.clone().into_value()),
            model.coef[1],
            model.num_rows,
            model.num_iterations,
        );
    }

    // --- Grouped serving: route every customer to their region's model ----
    // The trained registry goes into the model catalog as one named entry;
    // scoring the grouped dataset looks each row's region up in the
    // registry — bit-identical to filtering per region and predicting with
    // that region's model.
    session
        .register_grouped_models("churn_by_region", per_region)
        .expect("registry has no duplicate groups");
    let grouped_ds = Dataset::from_table(&customers).group_by(["region"]);
    let routed = session
        .score::<LogisticRegressionModel>(&grouped_ds, "churn_by_region", "x")
        .expect("registry covers every region");
    // Predictions come back in table scan order, so collect ground truth
    // from a scan of the same table rather than from the insertion-order
    // vector.
    let grouped_truth: Vec<bool> = Dataset::from_table(&customers)
        .map_rows(|row, _| Ok(row.get(1).as_double()? > 0.5))
        .expect("customer scan");
    let routed_predictions: Vec<bool> = routed
        .iter()
        .map(|v| v.as_bool().expect("grouped scores are booleans"))
        .collect();
    let routed_accuracy = accuracy(&routed_predictions, &grouped_truth).expect("accuracy");
    println!("per-region catalog serving accuracy:      {routed_accuracy:.3}");

    // Decision tree and naive Bayes on a single split for comparison.
    let mut labeled = Table::new(labeled_schema.clone(), 4).expect("table");
    for (_, x, label, _) in rows.iter().take(1_500) {
        labeled.insert(row![*label, x.clone()]).expect("insert");
    }
    let tree = session
        .train(
            &DecisionTree::new("label", "features").with_max_depth(6),
            &Dataset::from_table(&labeled),
        )
        .expect("tree fit");
    let bayes = session
        .train(
            &NaiveBayes::new("label", "features"),
            &Dataset::from_table(&labeled),
        )
        .expect("bayes fit");

    // Registering moves the models into the catalog, so grab the tree's
    // shape first; from here on both are served by name.
    let tree_leaves = tree.leaf_count();
    session.register_model("churn_tree", tree);
    session.register_model("churn_bayes", bayes);

    // The holdout lives in its own table and is scored through the catalog
    // — no hand-written predict loop.
    let mut holdout = Table::new(labeled_schema, 4).expect("table");
    for (_, x, label, _) in rows.iter().skip(1_500) {
        holdout.insert(row![*label, x.clone()]).expect("insert");
    }
    let holdout_ds = Dataset::from_table(&holdout);
    let truth: Vec<String> = holdout_ds
        .map_rows(|row, _| Ok(row.get(0).as_text()?.to_owned()))
        .expect("holdout scan");
    let tree_scores = session
        .score::<DecisionTreeModel>(&holdout_ds, "churn_tree", "features")
        .expect("tree is in the catalog");
    let bayes_scores = session
        .score::<NaiveBayesModel>(&holdout_ds, "churn_bayes", "features")
        .expect("bayes is in the catalog");
    let tree_predictions: Vec<&str> = tree_scores
        .iter()
        .map(|v| v.as_text().expect("tree scores are labels"))
        .collect();
    let bayes_predictions: Vec<&str> = bayes_scores
        .iter()
        .map(|v| v.as_text().expect("bayes scores are labels"))
        .collect();
    let truth_refs: Vec<&str> = truth.iter().map(String::as_str).collect();
    let tree_accuracy = accuracy(&tree_predictions, &truth_refs).expect("accuracy");
    let bayes_accuracy = accuracy(&bayes_predictions, &truth_refs).expect("accuracy");
    println!(
        "\ndecision tree (C4.5) holdout accuracy:    {tree_accuracy:.3} ({tree_leaves} leaves)"
    );
    println!("naive Bayes holdout accuracy:             {bayes_accuracy:.3}");
}
