//! Market-basket analysis: association rules plus data profiling, the kind
//! of "Magnetic, Agile, Deep" retail workload the MAD Skills line of work is
//! motivated by.

use madlib::engine::Dataset;
use madlib::methods::assoc::Apriori;
use madlib::methods::datasets::market_basket_data;
use madlib::methods::Session;
use madlib::sketch::{ColumnProfile, DatasetProfileExt};

fn main() {
    let session = Session::in_memory(4).expect("segment count is positive");
    let executor = *session.executor();
    // 2 000 synthetic transactions over a 40-item catalog with a planted
    // co-purchase pattern (item_0 + item_1, sometimes joined by item_2).
    let transactions = market_basket_data(2_000, 40, 4, 7).expect("generator succeeds");

    // Profile the raw table first (the paper's templated `profile` module):
    // the dataset's `profile()` terminal runs one segment-parallel pass.
    let profile = Dataset::from_table(&transactions)
        .profile()
        .expect("profiling succeeds");
    println!("profiled {} rows:", profile.row_count);
    for column in &profile.columns {
        match column {
            ColumnProfile::Numeric { name, summary, .. } => println!(
                "  {name}: numeric, {} rows, mean {:?}",
                summary.count(),
                summary.mean()
            ),
            ColumnProfile::Categorical {
                name,
                distinct_exact,
                ..
            } => println!("  {name}: categorical, {distinct_exact} distinct values"),
            ColumnProfile::Array {
                name,
                length_summary,
            } => println!(
                "  {name}: array column, average basket size {:.2}",
                length_summary.mean().unwrap_or(0.0)
            ),
        }
    }

    // Mine association rules.
    let apriori = Apriori::new("items", 0.15, 0.6).expect("valid thresholds");
    let itemsets = apriori
        .frequent_itemsets(&executor, &transactions)
        .expect("itemset mining succeeds");
    println!("\nfrequent itemsets (support ≥ 0.15): {}", itemsets.len());
    for itemset in itemsets.iter().filter(|f| f.items.len() >= 2) {
        println!("  {:?} support {:.3}", itemset.items, itemset.support);
    }

    let rules = apriori
        .mine_rules(&executor, &transactions)
        .expect("rule mining succeeds");
    println!("\nassociation rules (confidence ≥ 0.6):");
    for rule in rules.iter().take(5) {
        println!(
            "  {:?} => {:?}  support {:.3}  confidence {:.3}  lift {:.2}",
            rule.antecedent, rule.consequent, rule.support, rule.confidence, rule.lift
        );
    }
}
