//! Market-basket analysis: association rules plus data profiling, the kind
//! of "Magnetic, Agile, Deep" retail workload the MAD Skills line of work is
//! motivated by.

use madlib::engine::Dataset;
use madlib::methods::assoc::Apriori;
use madlib::methods::datasets::market_basket_data;
use madlib::methods::Session;
use madlib::sketch::{ColumnProfile, DatasetProfileExt};

fn main() {
    let session = Session::in_memory(4).expect("segment count is positive");
    // 2 000 synthetic transactions over a 40-item catalog with a planted
    // co-purchase pattern (item_0 + item_1, sometimes joined by item_2).
    let transactions = market_basket_data(2_000, 40, 4, 7).expect("generator succeeds");

    // Profile the raw table first (the paper's templated `profile` module):
    // the dataset's `profile()` terminal runs one segment-parallel pass.
    let profile = Dataset::from_table(&transactions)
        .profile()
        .expect("profiling succeeds");
    println!("profiled {} rows:", profile.row_count);
    for column in &profile.columns {
        match column {
            ColumnProfile::Numeric { name, summary, .. } => println!(
                "  {name}: numeric, {} rows, mean {:?}",
                summary.count(),
                summary.mean()
            ),
            ColumnProfile::Categorical {
                name,
                distinct_exact,
                ..
            } => println!("  {name}: categorical, {distinct_exact} distinct values"),
            ColumnProfile::Array {
                name,
                length_summary,
            } => println!(
                "  {name}: array column, average basket size {:.2}",
                length_summary.mean().unwrap_or(0.0)
            ),
        }
    }

    // Mine association rules through the uniform training convention: one
    // `Session::train` call produces the frequent itemsets and the rules.
    let apriori = Apriori::new("items", 0.15, 0.6).expect("valid thresholds");
    let model = session
        .train(&apriori, &Dataset::from_table(&transactions))
        .expect("rule mining succeeds");
    println!(
        "\nfrequent itemsets (support ≥ 0.15): {}",
        model.itemsets.len()
    );
    for itemset in model.itemsets.iter().filter(|f| f.items.len() >= 2) {
        println!("  {:?} support {:.3}", itemset.items, itemset.support);
    }

    println!("\nassociation rules (confidence ≥ 0.6):");
    for rule in model.rules.iter().take(5) {
        println!(
            "  {:?} => {:?}  support {:.3}  confidence {:.3}  lift {:.2}",
            rule.antecedent, rule.consequent, rule.support, rule.confidence, rule.lift
        );
    }

    // MADlib's `grouping_cols` scenario: one basket model per store in a
    // single `train_grouped` call over the generator's `store` column.
    let grouped = session
        .train_grouped(
            &apriori,
            &Dataset::from_table(&transactions).group_by(["store"]),
        )
        .expect("grouped rule mining succeeds");
    println!("\nper-store rule counts (grouping_cols = [store]):");
    for (store, model) in &grouped {
        println!(
            "  store {:?}: {} transactions, {} rules",
            store.clone().into_value(),
            model.num_transactions,
            model.rules.len()
        );
    }
}
