//! Grouped-training equivalence properties (the paper's `grouping_cols`).
//!
//! `Session::train_grouped` promises that training one model per group —
//! whether through the single-pass grouped scan (single-pass aggregating
//! estimators like linear regression) or the segment-preserving per-group
//! gather (iterative estimators like IRLS logistic regression) — is
//! **bit-identical** to the naive plan: filter the source dataset down to
//! each group with a group-key predicate and fit that group alone.  These
//! property tests enforce the promise over randomized data with NULL group
//! keys, single-row groups, ragged partitions, tiny chunk capacities, extra
//! row filters, and both execution modes.

use madlib::engine::expr::Predicate;
use madlib::engine::{Column, ColumnType, Dataset, Executor, GroupKey, Row, Schema, Table, Value};
use madlib::methods::assoc::Apriori;
use madlib::methods::classify::{DecisionTree, LinearSvm, NaiveBayes};
use madlib::methods::cluster::KMeans;
use madlib::methods::factor::LowRankFactorization;
use madlib::methods::regress::{LinearRegression, LogisticRegression};
use madlib::methods::topic::Lda;
use madlib::methods::{Estimator, Session};
use madlib::text::CrfEstimator;
use proptest::prelude::*;

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Builds a `grp (int, nullable) | y (double) | x (double[])` table.
fn grouped_table(
    points: &[(usize, f64, [f64; 2])],
    distinct_keys: usize,
    null_every: Option<usize>,
    segments: usize,
    chunk_capacity: usize,
    binary_labels: bool,
) -> Table {
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for (i, (key, y, x)) in points.iter().enumerate() {
        let group = if null_every.is_some_and(|n| i % n == 0) {
            Value::Null
        } else {
            Value::Int((key % distinct_keys) as i64 - 2)
        };
        let label = if binary_labels {
            f64::from(*y > 0.0)
        } else {
            *y
        };
        table
            .insert(Row::new(vec![
                group,
                Value::Double(label),
                Value::DoubleArray(x.to_vec()),
            ]))
            .unwrap();
    }
    table
}

/// The naive per-group plan: filter the dataset down to one (possibly
/// composite) group key and fit that group alone.
fn filter_then_fit_columns<E: Estimator>(
    estimator: &E,
    table: &Table,
    executor: Executor,
    extra_filter: Option<&Predicate>,
    columns: &[&str],
    key: GroupKey,
    session: &Session,
) -> madlib::methods::Result<E::Model> {
    let mut ds = Dataset::from_table(table)
        .with_executor(executor)
        .filter(Predicate::columns_are_key(columns.iter().copied(), key));
    if let Some(pred) = extra_filter {
        ds = ds.filter(pred.clone());
    }
    estimator.fit(&ds, session)
}

/// Single-column shorthand over [`filter_then_fit_columns`] for the `grp`
/// tables used throughout this suite.
fn filter_then_fit<E: Estimator>(
    estimator: &E,
    table: &Table,
    executor: Executor,
    extra_filter: Option<&Predicate>,
    key: GroupKey,
    session: &Session,
) -> madlib::methods::Result<E::Model> {
    filter_then_fit_columns(
        estimator,
        table,
        executor,
        extra_filter,
        &["grp"],
        key,
        session,
    )
}

/// One key-column value for the composite-key property tests: every flavor
/// injects NULLs, and the double flavor additionally cycles `0.0`, `-0.0`
/// and NaN through the key position, so each position of a composite key is
/// exercised with the full set of tricky group values.
fn key_value(flavor: usize, k: usize) -> Value {
    match flavor % 3 {
        0 => match k % 6 {
            0 => Value::Null,
            1 => Value::Double(0.0),
            2 => Value::Double(-0.0),
            3 => Value::Double(f64::NAN),
            other => Value::Double(other as f64),
        },
        1 => {
            if k.is_multiple_of(4) {
                Value::Null
            } else {
                Value::Int((k % 4) as i64 - 2)
            }
        }
        _ => {
            if k.is_multiple_of(5) {
                Value::Null
            } else {
                Value::Text(format!("g{}", k % 3))
            }
        }
    }
}

/// The column type matching [`key_value`]'s flavor.
fn key_column_type(flavor: usize) -> ColumnType {
    match flavor % 3 {
        0 => ColumnType::Double,
        1 => ColumnType::Int,
        _ => ColumnType::Text,
    }
}

/// Builds a table with `num_cols` key columns (`g0`, `g1`, …) of per-column
/// flavors, plus `y` / `x` regression columns.
fn composite_table(
    points: &[(usize, usize, usize, f64, [f64; 2])],
    flavors: &[usize; 3],
    num_cols: usize,
    segments: usize,
    chunk_capacity: usize,
    binary_labels: bool,
) -> (Table, Vec<String>) {
    let columns: Vec<String> = (0..num_cols).map(|c| format!("g{c}")).collect();
    let mut schema_cols: Vec<Column> = columns
        .iter()
        .enumerate()
        .map(|(c, name)| Column::new(name.as_str(), key_column_type(flavors[c])))
        .collect();
    schema_cols.push(Column::new("y", ColumnType::Double));
    schema_cols.push(Column::new("x", ColumnType::DoubleArray));
    let mut table = Table::new(Schema::new(schema_cols), segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for (k0, k1, k2, y, x) in points {
        let ks = [*k0, *k1, *k2];
        let mut values: Vec<Value> = (0..num_cols)
            .map(|c| key_value(flavors[c], ks[c]))
            .collect();
        values.push(Value::Double(if binary_labels {
            f64::from(*y > 0.0)
        } else {
            *y
        }));
        values.push(Value::DoubleArray(x.to_vec()));
        table.insert(Row::new(values)).unwrap();
    }
    (table, columns)
}

proptest! {
    /// Linear regression (single-pass grouped scan): per-group models from
    /// one grouped pass are bit-identical to filter-then-fit per group.
    #[test]
    fn grouped_linregr_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..10, -10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64]), 1..100),
        distinct_keys in 1usize..6,
        (segments, chunk_capacity) in (1usize..5, 1usize..30),
        null_every_raw in 0usize..5,
        filtered in any::<bool>(),
        row_mode in any::<bool>(),
    ) {
        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let table = grouped_table(&points, distinct_keys, null_every, segments, chunk_capacity, false);
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let extra = filtered.then(|| Predicate::column_gt("y", 0.0));
        let session = Session::in_memory(segments).unwrap().with_executor(executor);

        let mut grouped_ds = Dataset::from_table(&table).group_by(["grp"]);
        if let Some(pred) = &extra {
            grouped_ds = grouped_ds.filter(pred.clone());
        }
        let estimator = LinearRegression::new("y", "x");
        let grouped = session.train_grouped(&estimator, &grouped_ds).unwrap();

        // Every group key that survives the filter appears exactly once.
        let schema = table.schema();
        let survivors: Vec<Row> = table
            .iter()
            .filter(|r| extra.as_ref().is_none_or(|p| p.evaluate(r, schema).unwrap()))
            .collect();
        let mut expected_keys: Vec<madlib::engine::GroupKey> = survivors
            .iter()
            .map(|r| madlib::engine::GroupKey::from_value(r.get(0)))
            .collect();
        expected_keys.sort();
        expected_keys.dedup();
        prop_assert_eq!(grouped.len(), expected_keys.len());

        let mut total_rows = 0;
        for (key, model) in &grouped {
            let alone = filter_then_fit(
                &estimator, &table, executor, extra.as_ref(), key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(bits(&model.coef), bits(&alone.coef));
            prop_assert_eq!(model.r2.to_bits(), alone.r2.to_bits());
            prop_assert_eq!(bits(&model.std_err), bits(&alone.std_err));
            prop_assert_eq!(bits(&model.t_stats), bits(&alone.t_stats));
            prop_assert_eq!(model.num_rows, alone.num_rows);
            total_rows += model.num_rows as usize;
        }
        prop_assert_eq!(total_rows, survivors.len());
    }

    /// IRLS logistic regression (iterative; per-group gather): the gathered
    /// per-group tables preserve segment placement and row order, so every
    /// per-group IRLS run is bit-identical to filter-then-fit.
    #[test]
    fn grouped_logregr_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..8, -5.0..5.0f64, [-2.0..2.0f64, -2.0..2.0f64]), 2..60),
        distinct_keys in 1usize..4,
        (segments, chunk_capacity) in (1usize..4, 1usize..20),
        null_every_raw in 0usize..4,
        row_mode in any::<bool>(),
    ) {
        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let table = grouped_table(&points, distinct_keys, null_every, segments, chunk_capacity, true);
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = LogisticRegression::new("y", "x").with_max_iterations(5);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&table).group_by(["grp"]))
            .unwrap();
        prop_assert!(!grouped.is_empty());

        for (key, model) in &grouped {
            let alone = filter_then_fit(
                &estimator, &table, executor, None, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(bits(&model.coef), bits(&alone.coef));
            prop_assert_eq!(bits(&model.std_err), bits(&alone.std_err));
            prop_assert_eq!(model.log_likelihood.to_bits(), alone.log_likelihood.to_bits());
            prop_assert_eq!(model.num_iterations, alone.num_iterations);
            prop_assert_eq!(model.converged, alone.converged);
            prop_assert_eq!(model.num_rows, alone.num_rows);
        }
    }

    /// Composite keys (the paper's multi-column `grouping_cols`):
    /// `group_by(["g0", "g1"(, "g2")])` trains one linear regression per
    /// distinct key *tuple*, bit-identical to filtering the source down to
    /// each composite key and fitting it alone — across per-position key
    /// flavors mixing NULL, NaN, `-0.0` and int/double/text types, extra row
    /// filters, and both execution modes.
    #[test]
    fn grouped_composite_linregr_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..10, 0usize..10, 0usize..10, -10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64]),
            1..80),
        flavors in [0usize..3, 0usize..3, 0usize..3],
        three_cols in any::<bool>(),
        (segments, chunk_capacity) in (1usize..4, 1usize..24),
        filtered in any::<bool>(),
        row_mode in any::<bool>(),
    ) {
        let num_cols = if three_cols { 3 } else { 2 };
        let (table, columns) =
            composite_table(&points, &flavors, num_cols, segments, chunk_capacity, false);
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let extra = filtered.then(|| Predicate::column_gt("y", 0.0));
        let session = Session::in_memory(segments).unwrap().with_executor(executor);

        let mut grouped_ds = Dataset::from_table(&table).group_by(columns.clone());
        if let Some(pred) = &extra {
            grouped_ds = grouped_ds.filter(pred.clone());
        }
        let estimator = LinearRegression::new("y", "x");
        let grouped = session.train_grouped(&estimator, &grouped_ds).unwrap();

        // Exactly one model per distinct surviving key tuple.
        let schema = table.schema();
        let survivors: Vec<Row> = table
            .iter()
            .filter(|r| extra.as_ref().is_none_or(|p| p.evaluate(r, schema).unwrap()))
            .collect();
        let mut expected_keys: Vec<GroupKey> = survivors
            .iter()
            .map(|r| GroupKey::from_values((0..num_cols).map(|c| r.get(c))))
            .collect();
        expected_keys.sort();
        expected_keys.dedup();
        prop_assert_eq!(grouped.len(), expected_keys.len());
        prop_assert_eq!(
            grouped.keys().cloned().collect::<Vec<_>>(),
            expected_keys
        );

        let mut total_rows = 0;
        for (key, model) in &grouped {
            prop_assert_eq!(key.arity(), num_cols);
            let alone = filter_then_fit_columns(
                &estimator, &table, executor, extra.as_ref(), &column_refs, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(bits(&model.coef), bits(&alone.coef));
            prop_assert_eq!(model.r2.to_bits(), alone.r2.to_bits());
            prop_assert_eq!(bits(&model.std_err), bits(&alone.std_err));
            prop_assert_eq!(bits(&model.t_stats), bits(&alone.t_stats));
            prop_assert_eq!(model.num_rows, alone.num_rows);
            total_rows += model.num_rows as usize;

            // Composite lookup resolves the same model.
            let looked_up = grouped.get_values(&key.clone().into_values()).unwrap();
            prop_assert_eq!(bits(&looked_up.coef), bits(&model.coef));
        }
        prop_assert_eq!(total_rows, survivors.len());
    }

    /// Composite keys through the *iterative* path: the per-group gather
    /// splits on the key tuple while preserving segment placement, so
    /// two-column grouped IRLS is bit-identical to filter-then-fit.
    #[test]
    fn grouped_composite_logregr_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..6, 0usize..6, 0usize..6, -5.0..5.0f64, [-2.0..2.0f64, -2.0..2.0f64]),
            2..50),
        flavors in [0usize..3, 0usize..3, 0usize..3],
        (segments, chunk_capacity) in (1usize..4, 1usize..16),
        row_mode in any::<bool>(),
    ) {
        let (table, columns) =
            composite_table(&points, &flavors, 2, segments, chunk_capacity, true);
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = LogisticRegression::new("y", "x").with_max_iterations(4);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&table).group_by(columns.clone()))
            .unwrap();
        prop_assert!(!grouped.is_empty());

        for (key, model) in &grouped {
            let alone = filter_then_fit_columns(
                &estimator, &table, executor, None, &column_refs, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(bits(&model.coef), bits(&alone.coef));
            prop_assert_eq!(bits(&model.std_err), bits(&alone.std_err));
            prop_assert_eq!(model.log_likelihood.to_bits(), alone.log_likelihood.to_bits());
            prop_assert_eq!(model.num_iterations, alone.num_iterations);
            prop_assert_eq!(model.num_rows, alone.num_rows);
        }
    }
}

/// Single-row groups (every key unique) train one model per row, identical
/// to fitting each row alone — for both the single-pass and the gather path.
#[test]
fn single_row_groups_train_one_model_per_row() {
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, 3)
        .unwrap()
        .with_chunk_capacity(4)
        .unwrap();
    for i in 0..9 {
        table
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Double(i as f64),
                Value::DoubleArray(vec![1.0, i as f64]),
            ]))
            .unwrap();
    }
    // One row sits in the NULL group too.
    table
        .insert(Row::new(vec![
            Value::Null,
            Value::Double(4.5),
            Value::DoubleArray(vec![1.0, 2.0]),
        ]))
        .unwrap();
    let session = Session::in_memory(3).unwrap();
    let ds = Dataset::from_table(&table).group_by(["grp"]);

    let linregr = session
        .train_grouped(&LinearRegression::new("y", "x"), &ds)
        .unwrap();
    assert_eq!(linregr.len(), 10);
    for (key, model) in &linregr {
        assert_eq!(model.num_rows, 1);
        let alone = filter_then_fit(
            &LinearRegression::new("y", "x"),
            &table,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(bits(&model.coef), bits(&alone.coef));
    }

    // Iterative path over single-row groups (labels 0/1).
    let mut labels = Table::new(table.schema().clone(), 3).unwrap();
    for i in 0..6 {
        labels
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Double(f64::from(i % 2 == 0)),
                Value::DoubleArray(vec![1.0, i as f64 - 2.5]),
            ]))
            .unwrap();
    }
    let estimator = LogisticRegression::new("y", "x").with_max_iterations(3);
    let grouped = session
        .train_grouped(&estimator, &Dataset::from_table(&labels).group_by(["grp"]))
        .unwrap();
    assert_eq!(grouped.len(), 6);
    for (key, model) in &grouped {
        assert_eq!(model.num_rows, 1);
        let alone = filter_then_fit(
            &estimator,
            &labels,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(bits(&model.coef), bits(&alone.coef));
    }
}

/// Builds a `grp (int, one NULL group) | label (text) | y (double) |
/// x (double[])` classification table: three labeled blobs per group, group
/// keys -1, 0, 1 and NULL, every group populated with `per_group` points.
fn classification_table(segments: usize, chunk_capacity: usize, per_group: usize) -> Table {
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("label", ColumnType::Text),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for g in 0..4i64 {
        let group = if g == 3 {
            Value::Null
        } else {
            Value::Int(g - 1)
        };
        for i in 0..per_group {
            // Deterministic, group-dependent, separable-ish data.
            let v = i as f64 - per_group as f64 / 2.0 + g as f64 * 0.25;
            let positive = v > 0.0;
            let label = if positive { "pos" } else { "neg" };
            let y = if positive { 1.0 } else { -1.0 };
            let x = vec![1.0, v, v * 0.5 - g as f64, (i % 3) as f64];
            table
                .insert(Row::new(vec![
                    group.clone(),
                    Value::Text(label.into()),
                    Value::Double(y),
                    Value::DoubleArray(x),
                ]))
                .unwrap();
        }
    }
    table
}

/// Runs `estimator` through `Session::train_grouped` over `group_by(["grp"])`
/// in both execution modes and asserts every per-group model equals the
/// filter-then-fit model for that key.
fn assert_grouped_matches_filter_then_fit<E>(estimator: &E, table: &Table, expected_groups: usize)
where
    E: Estimator + Sync,
    E::Model: PartialEq + std::fmt::Debug + Send,
{
    for executor in [Executor::new(), Executor::row_at_a_time()] {
        let session = Session::in_memory(table.num_segments())
            .unwrap()
            .with_executor(executor);
        let grouped = session
            .train_grouped(estimator, &Dataset::from_table(table).group_by(["grp"]))
            .unwrap();
        assert_eq!(grouped.len(), expected_groups);
        for (key, model) in &grouped {
            let alone =
                filter_then_fit(estimator, table, executor, None, key.clone(), &session).unwrap();
            assert_eq!(*model, alone, "group {key:?} diverged from filter-then-fit");
        }
    }
}

/// `train_grouped` with k-means: the per-group gather preserves segment
/// placement and row order, so seeding, every Lloyd step and the final
/// inertia pass are identical to fitting the filtered group alone.
#[test]
fn grouped_kmeans_equals_filter_then_fit() {
    let table = classification_table(3, 8, 12);
    let estimator = KMeans::new("x", 2)
        .unwrap()
        .with_seed(7)
        .with_max_iterations(8);
    assert_grouped_matches_filter_then_fit(&estimator, &table, 4);

    // Centroids specifically are bit-identical, not merely close.
    let session = Session::in_memory(3).unwrap();
    let grouped = session
        .train_grouped(&estimator, &Dataset::from_table(&table).group_by(["grp"]))
        .unwrap();
    for (key, model) in &grouped {
        let alone = filter_then_fit(
            &estimator,
            &table,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        for (ca, cb) in model.centroids.iter().zip(&alone.centroids) {
            assert_eq!(bits(ca), bits(cb));
        }
        assert_eq!(model.inertia.to_bits(), alone.inertia.to_bits());
    }
}

/// `train_grouped` with naive Bayes (single-pass override): one grouped scan
/// trains all groups, identical to per-key filtered aggregation.
#[test]
fn grouped_naive_bayes_equals_filter_then_fit() {
    let table = classification_table(2, 8, 15);
    assert_grouped_matches_filter_then_fit(&NaiveBayes::new("label", "x"), &table, 4);
}

/// `train_grouped` with a C4.5 decision tree (iterative/materializing path):
/// the gathered per-group rows arrive in the same order as a filtered scan,
/// so the greedy splits are identical.
#[test]
fn grouped_decision_tree_equals_filter_then_fit() {
    let table = classification_table(2, 8, 15);
    assert_grouped_matches_filter_then_fit(&DecisionTree::new("label", "x"), &table, 4);
}

/// `train_grouped` with a Pegasos linear SVM: the seeded shuffle sees the
/// same row sequence either way, so the weight trajectories are identical.
#[test]
fn grouped_linear_svm_equals_filter_then_fit() {
    let table = classification_table(3, 8, 14);
    let estimator = LinearSvm::new("y", "x").with_seed(11).with_epochs(6);
    assert_grouped_matches_filter_then_fit(&estimator, &table, 4);
}

/// Grouping-column validation surfaces as typed errors through the whole
/// training stack — unknown names and duplicates cannot silently mis-group.
#[test]
fn train_grouped_rejects_bad_grouping_columns() {
    let table = classification_table(2, 8, 6);
    let session = Session::in_memory(2).unwrap();
    let estimator = LinearRegression::new("y", "x");

    // Unknown column name: typed ColumnNotFound from the engine, for both
    // the single-pass (linregr) and gather (logregr) grouped paths.
    let err = session
        .train_grouped(&estimator, &Dataset::from_table(&table).group_by(["nope"]))
        .unwrap_err();
    assert!(
        err.to_string().contains("column not found"),
        "unexpected error: {err}"
    );
    let err = session
        .train_grouped(
            &LogisticRegression::new("y", "x"),
            &Dataset::from_table(&table).group_by(["grp", "nope"]),
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("column not found"),
        "unexpected error: {err}"
    );

    // Duplicate grouping columns are rejected up front.
    let err = session
        .train_grouped(
            &estimator,
            &Dataset::from_table(&table).group_by(["grp", "grp"]),
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("duplicate"),
        "unexpected error: {err}"
    );

    // Valid multi-column grouping works end to end: grp × label tuples.
    let grouped = session
        .train_grouped(
            &estimator,
            &Dataset::from_table(&table).group_by(["grp", "label"]),
        )
        .unwrap();
    assert_eq!(grouped.len(), 8);
    assert!(grouped.keys().all(|key| key.arity() == 2));
}

// ---------------------------------------------------------------------------
// The four newly ported methods (low-rank factorization, LDA, Apriori, CRF):
// each must satisfy the same grouped ≡ filter-then-fit bit-identity as the
// original six, over the same composite-key torture inputs.
// ---------------------------------------------------------------------------

/// Builds a table with two flavor-typed key columns (`g0`, `g1`) followed by
/// the given payload columns, one row per `(k0, k1, payload)` point.
fn keyed_payload_table(
    keys: &[(usize, usize)],
    payloads: Vec<Vec<Value>>,
    payload_columns: Vec<Column>,
    flavors: &[usize; 2],
    segments: usize,
    chunk_capacity: usize,
) -> (Table, Vec<String>) {
    let columns = vec!["g0".to_owned(), "g1".to_owned()];
    let mut schema_cols = vec![
        Column::new("g0", key_column_type(flavors[0])),
        Column::new("g1", key_column_type(flavors[1])),
    ];
    schema_cols.extend(payload_columns);
    let mut table = Table::new(Schema::new(schema_cols), segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for ((k0, k1), payload) in keys.iter().zip(payloads) {
        let mut values = vec![key_value(flavors[0], *k0), key_value(flavors[1], *k1)];
        values.extend(payload);
        table.insert(Row::new(values)).unwrap();
    }
    (table, columns)
}

proptest! {
    /// Apriori (level-wise aggregate passes through the per-group gather):
    /// one rule-mining model per composite key, bit-identical to mining each
    /// key's filtered transactions alone — itemsets, supports, rules,
    /// confidences and lifts included.
    #[test]
    fn grouped_apriori_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..8, 0usize..8, 0i64..10, prop::collection::vec(0usize..6, 0..5)),
            1..50),
        flavors in [0usize..3, 0usize..3],
        (segments, chunk_capacity) in (1usize..4, 1usize..16),
        filtered in any::<bool>(),
        row_mode in any::<bool>(),
    ) {
        let keys: Vec<(usize, usize)> = points.iter().map(|(a, b, ..)| (*a, *b)).collect();
        let payloads: Vec<Vec<Value>> = points
            .iter()
            .map(|(_, _, tid, items)| {
                vec![
                    Value::Int(*tid),
                    Value::TextArray(items.iter().map(|i| format!("item_{i}")).collect()),
                ]
            })
            .collect();
        let (table, columns) = keyed_payload_table(
            &keys,
            payloads,
            vec![
                Column::new("tid", ColumnType::Int),
                Column::new("items", ColumnType::TextArray),
            ],
            &flavors,
            segments,
            chunk_capacity,
        );
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let extra = filtered.then(|| Predicate::column_gt("tid", 3.5));
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = Apriori::new("items", 0.3, 0.5).unwrap().with_max_itemset_size(3);

        let mut grouped_ds = Dataset::from_table(&table).group_by(columns.clone());
        if let Some(pred) = &extra {
            grouped_ds = grouped_ds.filter(pred.clone());
        }
        // Filtering every row out yields an *empty* model set, never an
        // error, so grouped mining must succeed for all generated inputs.
        let grouped = session.train_grouped(&estimator, &grouped_ds).unwrap();

        let mut total_transactions = 0;
        for (key, model) in &grouped {
            let alone = filter_then_fit_columns(
                &estimator, &table, executor, extra.as_ref(), &column_refs, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(model, &alone, "group {:?} diverged", key);
            total_transactions += model.num_transactions;
        }
        let schema = table.schema();
        let survivors = table
            .iter()
            .filter(|r| extra.as_ref().is_none_or(|p| p.evaluate(r, schema).unwrap()))
            .count();
        prop_assert_eq!(total_transactions as usize, survivors);
    }

    /// Low-rank matrix factorization (seeded SGD over gathered triples): the
    /// per-group gather preserves scan order, so every per-group SGD
    /// trajectory — factors, RMSE, epoch count — is bit-identical to
    /// filter-then-fit.
    #[test]
    fn grouped_lowrank_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..6, 0usize..6, 0i64..5, 0i64..5, -2.0..2.0f64), 1..50),
        flavors in [0usize..3, 0usize..3],
        (segments, chunk_capacity) in (1usize..4, 1usize..16),
        row_mode in any::<bool>(),
    ) {
        let keys: Vec<(usize, usize)> = points.iter().map(|(a, b, ..)| (*a, *b)).collect();
        let payloads: Vec<Vec<Value>> = points
            .iter()
            .map(|(_, _, u, i, r)| vec![Value::Int(*u), Value::Int(*i), Value::Double(*r)])
            .collect();
        let (table, columns) = keyed_payload_table(
            &keys,
            payloads,
            vec![
                Column::new("user_id", ColumnType::Int),
                Column::new("item_id", ColumnType::Int),
                Column::new("rating", ColumnType::Double),
            ],
            &flavors,
            segments,
            chunk_capacity,
        );
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 2)
            .unwrap()
            .with_epochs(3)
            .with_seed(17);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&table).group_by(columns.clone()))
            .unwrap();
        prop_assert!(!grouped.is_empty());
        for (key, model) in &grouped {
            let alone = filter_then_fit_columns(
                &estimator, &table, executor, None, &column_refs, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(model, &alone, "group {:?} diverged", key);
        }
    }

    /// LDA (seeded collapsed Gibbs over gathered documents): same corpus
    /// order per group ⇒ same vocabulary, same topic assignments, same
    /// counts, bit for bit.
    #[test]
    fn grouped_lda_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..6, 0usize..6, prop::collection::vec(0usize..5, 1..6)), 1..30),
        flavors in [0usize..3, 0usize..3],
        (segments, chunk_capacity) in (1usize..4, 1usize..12),
        row_mode in any::<bool>(),
    ) {
        let keys: Vec<(usize, usize)> = points.iter().map(|(a, b, _)| (*a, *b)).collect();
        let payloads: Vec<Vec<Value>> = points
            .iter()
            .map(|(_, _, words)| {
                vec![Value::TextArray(words.iter().map(|w| format!("w{w}")).collect())]
            })
            .collect();
        let (table, columns) = keyed_payload_table(
            &keys,
            payloads,
            vec![Column::new("tokens", ColumnType::TextArray)],
            &flavors,
            segments,
            chunk_capacity,
        );
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = Lda::new("tokens", 2).unwrap().with_iterations(5).with_seed(3);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&table).group_by(columns.clone()))
            .unwrap();
        prop_assert!(!grouped.is_empty());
        for (key, model) in &grouped {
            let alone = filter_then_fit_columns(
                &estimator, &table, executor, None, &column_refs, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(model, &alone, "group {:?} diverged", key);
        }
    }

    /// Chain-CRF training (convex SGD epochs with per-segment model
    /// averaging): the gather preserves each sequence's *segment placement*,
    /// so per-group training reproduces filter-then-fit exactly — weights and
    /// all — in both execution modes.
    #[test]
    fn grouped_crf_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..5, 0usize..5, prop::collection::vec(0usize..2, 0..6)), 1..30),
        flavors in [0usize..3, 0usize..3],
        (segments, chunk_capacity) in (1usize..4, 1usize..12),
        row_mode in any::<bool>(),
    ) {
        let keys: Vec<(usize, usize)> = points.iter().map(|(a, b, _)| (*a, *b)).collect();
        let payloads: Vec<Vec<Value>> = points
            .iter()
            .enumerate()
            .map(|(i, (_, _, labels))| {
                let observations: Vec<i64> = labels
                    .iter()
                    .map(|&l| (l * 2 + i % 2) as i64)
                    .collect();
                vec![
                    Value::IntArray(observations),
                    Value::IntArray(labels.iter().map(|&l| l as i64).collect()),
                ]
            })
            .collect();
        let (table, columns) = keyed_payload_table(
            &keys,
            payloads,
            vec![
                Column::new("observations", ColumnType::IntArray),
                Column::new("labels", ColumnType::IntArray),
            ],
            &flavors,
            segments,
            chunk_capacity,
        );
        let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = CrfEstimator::new("observations", "labels", 2, 4).with_epochs(3);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&table).group_by(columns.clone()))
            .unwrap();
        prop_assert!(!grouped.is_empty());
        for (key, model) in &grouped {
            let alone = filter_then_fit_columns(
                &estimator, &table, executor, None, &column_refs, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(model, &alone, "group {:?} diverged", key);
        }
    }
}

/// Single-row groups through the four newly ported methods: every key unique,
/// one model per row, identical to fitting that row alone.
#[test]
fn single_row_groups_for_newly_ported_methods() {
    let session = Session::in_memory(2).unwrap();

    // Apriori: one single-basket model per group (plus a NULL group).
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("items", ColumnType::TextArray),
    ]);
    let mut baskets = Table::new(schema, 2)
        .unwrap()
        .with_chunk_capacity(2)
        .unwrap();
    for i in 0..5i64 {
        let group = if i == 4 { Value::Null } else { Value::Int(i) };
        baskets
            .insert(Row::new(vec![
                group,
                Value::TextArray(vec![format!("a{i}"), "staple".to_owned()]),
            ]))
            .unwrap();
    }
    let apriori = Apriori::new("items", 0.9, 0.5).unwrap();
    let grouped = session
        .train_grouped(&apriori, &Dataset::from_table(&baskets).group_by(["grp"]))
        .unwrap();
    assert_eq!(grouped.len(), 5);
    for (key, model) in &grouped {
        assert_eq!(model.num_transactions, 1);
        let alone = filter_then_fit(
            &apriori,
            &baskets,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(*model, alone);
    }

    // Low-rank factorization: one single-rating model per group.
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("user_id", ColumnType::Int),
        Column::new("item_id", ColumnType::Int),
        Column::new("rating", ColumnType::Double),
    ]);
    let mut ratings = Table::new(schema, 2).unwrap();
    for i in 0..4i64 {
        ratings
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Int(i % 2),
                Value::Int(i % 3),
                Value::Double(i as f64 * 0.5),
            ]))
            .unwrap();
    }
    let lowrank = LowRankFactorization::new("user_id", "item_id", "rating", 2)
        .unwrap()
        .with_epochs(2)
        .with_seed(5);
    let grouped = session
        .train_grouped(&lowrank, &Dataset::from_table(&ratings).group_by(["grp"]))
        .unwrap();
    assert_eq!(grouped.len(), 4);
    for (key, model) in &grouped {
        assert_eq!(model.num_ratings, 1);
        let alone = filter_then_fit(
            &lowrank,
            &ratings,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(*model, alone);
    }

    // LDA: one single-document corpus per group.
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("tokens", ColumnType::TextArray),
    ]);
    let mut corpus = Table::new(schema, 2).unwrap();
    for i in 0..4i64 {
        corpus
            .insert(Row::new(vec![
                Value::Int(i),
                Value::TextArray(vec![format!("w{i}"), "shared".to_owned()]),
            ]))
            .unwrap();
    }
    let lda = Lda::new("tokens", 2)
        .unwrap()
        .with_iterations(3)
        .with_seed(1);
    let grouped = session
        .train_grouped(&lda, &Dataset::from_table(&corpus).group_by(["grp"]))
        .unwrap();
    assert_eq!(grouped.len(), 4);
    for (key, model) in &grouped {
        assert_eq!(model.doc_topic.len(), 1);
        let alone = filter_then_fit(
            &lda,
            &corpus,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(*model, alone);
    }

    // CRF: one single-sequence corpus per group.
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("observations", ColumnType::IntArray),
        Column::new("labels", ColumnType::IntArray),
    ]);
    let mut sequences = Table::new(schema, 2).unwrap();
    for i in 0..4i64 {
        sequences
            .insert(Row::new(vec![
                Value::Int(i),
                Value::IntArray(vec![0, 2, (i % 4), 1]),
                Value::IntArray(vec![0, 1, (i % 2), 0]),
            ]))
            .unwrap();
    }
    let crf = CrfEstimator::new("observations", "labels", 2, 4).with_epochs(2);
    let grouped = session
        .train_grouped(&crf, &Dataset::from_table(&sequences).group_by(["grp"]))
        .unwrap();
    assert_eq!(grouped.len(), 4);
    for (key, model) in &grouped {
        let alone = filter_then_fit(
            &crf,
            &sequences,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(*model, alone);
    }
}

/// An estimator whose per-group fit panics outright, standing in for a bug
/// inside a method implementation.
struct PanicingEstimator;

impl Estimator for PanicingEstimator {
    type Model = ();

    fn fit(
        &self,
        _dataset: &Dataset<'_>,
        _session: &Session,
    ) -> madlib::methods::Result<Self::Model> {
        panic!("deliberate per-group fit explosion");
    }
}

/// A panic inside one group's fit must not unwind through the parallel
/// per-group scheduler: `train_grouped` catches it on the worker and
/// surfaces it as the typed `WorkerPanicked` engine error, payload message
/// included, in both execution modes.
#[test]
fn panicking_group_fit_surfaces_typed_worker_panic() {
    let table = classification_table(2, 8, 6);
    for executor in [Executor::new(), Executor::row_at_a_time()] {
        let session = Session::in_memory(table.num_segments())
            .unwrap()
            .with_executor(executor);
        let err = session
            .train_grouped(
                &PanicingEstimator,
                &Dataset::from_table(&table).group_by(["grp"]),
            )
            .unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("worker panicked"),
            "expected a typed WorkerPanicked error, got: {message}"
        );
        assert!(
            message.contains("deliberate per-group fit explosion"),
            "panic payload lost from the error: {message}"
        );
    }
}

/// Concurrent iterative trainings on one shared session must not collide on
/// iteration state tables: every driver claims its temp table name under a
/// single catalog lock, so parallel `train_grouped` calls (as the per-group
/// fit stage issues on a multi-core host) each see a private state table.
/// Regression test for the probe-then-create race this used to have.
#[test]
fn concurrent_iterative_trainings_get_distinct_state_tables() {
    let points: Vec<(usize, f64, [f64; 2])> = (0..48)
        .map(|i| {
            let v = i as f64 * 0.37 - 8.0;
            (i % 5, v, [v * 0.5 + 1.0, (i % 7) as f64 - 3.0])
        })
        .collect();
    let table = grouped_table(&points, 4, None, 2, 8, true);
    let session = Session::in_memory(table.num_segments()).unwrap();
    let estimator = LogisticRegression::new("y", "x").with_max_iterations(4);

    let serial = session
        .train_grouped(&estimator, &Dataset::from_table(&table).group_by(["grp"]))
        .unwrap();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = &session;
                let estimator = &estimator;
                let table = &table;
                scope.spawn(move || {
                    session
                        .train_grouped(estimator, &Dataset::from_table(table).group_by(["grp"]))
                        .unwrap()
                })
            })
            .collect();
        for handle in handles {
            let concurrent = handle.join().unwrap();
            assert_eq!(concurrent.len(), serial.len());
            for ((ka, ma), (kb, mb)) in concurrent.into_iter().zip(&serial) {
                assert_eq!(&ka, kb);
                assert_eq!(bits(&ma.coef), bits(&mb.coef));
            }
        }
    });
}
