//! Grouped-training equivalence properties (the paper's `grouping_cols`).
//!
//! `Session::train_grouped` promises that training one model per group —
//! whether through the single-pass grouped scan (single-pass aggregating
//! estimators like linear regression) or the segment-preserving per-group
//! gather (iterative estimators like IRLS logistic regression) — is
//! **bit-identical** to the naive plan: filter the source dataset down to
//! each group with a group-key predicate and fit that group alone.  These
//! property tests enforce the promise over randomized data with NULL group
//! keys, single-row groups, ragged partitions, tiny chunk capacities, extra
//! row filters, and both execution modes.

use madlib::engine::expr::Predicate;
use madlib::engine::{Column, ColumnType, Dataset, Executor, Row, Schema, Table, Value};
use madlib::methods::regress::{LinearRegression, LogisticRegression};
use madlib::methods::{Estimator, Session};
use proptest::prelude::*;

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Builds a `grp (int, nullable) | y (double) | x (double[])` table.
fn grouped_table(
    points: &[(usize, f64, [f64; 2])],
    distinct_keys: usize,
    null_every: Option<usize>,
    segments: usize,
    chunk_capacity: usize,
    binary_labels: bool,
) -> Table {
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for (i, (key, y, x)) in points.iter().enumerate() {
        let group = if null_every.is_some_and(|n| i % n == 0) {
            Value::Null
        } else {
            Value::Int((key % distinct_keys) as i64 - 2)
        };
        let label = if binary_labels {
            f64::from(*y > 0.0)
        } else {
            *y
        };
        table
            .insert(Row::new(vec![
                group,
                Value::Double(label),
                Value::DoubleArray(x.to_vec()),
            ]))
            .unwrap();
    }
    table
}

/// The naive per-group plan: filter the dataset down to one group key and
/// fit that group alone.
fn filter_then_fit<E: Estimator>(
    estimator: &E,
    table: &Table,
    executor: Executor,
    extra_filter: Option<&Predicate>,
    key: madlib::engine::GroupKey,
    session: &Session,
) -> madlib::methods::Result<E::Model> {
    let mut ds = Dataset::from_table(table)
        .with_executor(executor)
        .filter(Predicate::column_is_key("grp", key));
    if let Some(pred) = extra_filter {
        ds = ds.filter(pred.clone());
    }
    estimator.fit(&ds, session)
}

proptest! {
    /// Linear regression (single-pass grouped scan): per-group models from
    /// one grouped pass are bit-identical to filter-then-fit per group.
    #[test]
    fn grouped_linregr_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..10, -10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64]), 1..100),
        distinct_keys in 1usize..6,
        (segments, chunk_capacity) in (1usize..5, 1usize..30),
        null_every_raw in 0usize..5,
        filtered in any::<bool>(),
        row_mode in any::<bool>(),
    ) {
        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let table = grouped_table(&points, distinct_keys, null_every, segments, chunk_capacity, false);
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let extra = filtered.then(|| Predicate::column_gt("y", 0.0));
        let session = Session::in_memory(segments).unwrap().with_executor(executor);

        let mut grouped_ds = Dataset::from_table(&table).group_by(["grp"]);
        if let Some(pred) = &extra {
            grouped_ds = grouped_ds.filter(pred.clone());
        }
        let estimator = LinearRegression::new("y", "x");
        let grouped = session.train_grouped(&estimator, &grouped_ds).unwrap();

        // Every group key that survives the filter appears exactly once.
        let schema = table.schema();
        let survivors: Vec<Row> = table
            .iter()
            .filter(|r| extra.as_ref().is_none_or(|p| p.evaluate(r, schema).unwrap()))
            .collect();
        let mut expected_keys: Vec<madlib::engine::GroupKey> = survivors
            .iter()
            .map(|r| madlib::engine::GroupKey::from_value(r.get(0)))
            .collect();
        expected_keys.sort();
        expected_keys.dedup();
        prop_assert_eq!(grouped.len(), expected_keys.len());

        let mut total_rows = 0;
        for (key, model) in &grouped {
            let alone = filter_then_fit(
                &estimator, &table, executor, extra.as_ref(), key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(bits(&model.coef), bits(&alone.coef));
            prop_assert_eq!(model.r2.to_bits(), alone.r2.to_bits());
            prop_assert_eq!(bits(&model.std_err), bits(&alone.std_err));
            prop_assert_eq!(bits(&model.t_stats), bits(&alone.t_stats));
            prop_assert_eq!(model.num_rows, alone.num_rows);
            total_rows += model.num_rows as usize;
        }
        prop_assert_eq!(total_rows, survivors.len());
    }

    /// IRLS logistic regression (iterative; per-group gather): the gathered
    /// per-group tables preserve segment placement and row order, so every
    /// per-group IRLS run is bit-identical to filter-then-fit.
    #[test]
    fn grouped_logregr_equals_filter_then_fit(
        points in prop::collection::vec(
            (0usize..8, -5.0..5.0f64, [-2.0..2.0f64, -2.0..2.0f64]), 2..60),
        distinct_keys in 1usize..4,
        (segments, chunk_capacity) in (1usize..4, 1usize..20),
        null_every_raw in 0usize..4,
        row_mode in any::<bool>(),
    ) {
        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let table = grouped_table(&points, distinct_keys, null_every, segments, chunk_capacity, true);
        let executor = if row_mode { Executor::row_at_a_time() } else { Executor::new() };
        let session = Session::in_memory(segments).unwrap().with_executor(executor);
        let estimator = LogisticRegression::new("y", "x").with_max_iterations(5);

        let grouped = session
            .train_grouped(&estimator, &Dataset::from_table(&table).group_by(["grp"]))
            .unwrap();
        prop_assert!(!grouped.is_empty());

        for (key, model) in &grouped {
            let alone = filter_then_fit(
                &estimator, &table, executor, None, key.clone(), &session,
            )
            .unwrap();
            prop_assert_eq!(bits(&model.coef), bits(&alone.coef));
            prop_assert_eq!(bits(&model.std_err), bits(&alone.std_err));
            prop_assert_eq!(model.log_likelihood.to_bits(), alone.log_likelihood.to_bits());
            prop_assert_eq!(model.num_iterations, alone.num_iterations);
            prop_assert_eq!(model.converged, alone.converged);
            prop_assert_eq!(model.num_rows, alone.num_rows);
        }
    }
}

/// Single-row groups (every key unique) train one model per row, identical
/// to fitting each row alone — for both the single-pass and the gather path.
#[test]
fn single_row_groups_train_one_model_per_row() {
    let schema = Schema::new(vec![
        Column::new("grp", ColumnType::Int),
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, 3)
        .unwrap()
        .with_chunk_capacity(4)
        .unwrap();
    for i in 0..9 {
        table
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Double(i as f64),
                Value::DoubleArray(vec![1.0, i as f64]),
            ]))
            .unwrap();
    }
    // One row sits in the NULL group too.
    table
        .insert(Row::new(vec![
            Value::Null,
            Value::Double(4.5),
            Value::DoubleArray(vec![1.0, 2.0]),
        ]))
        .unwrap();
    let session = Session::in_memory(3).unwrap();
    let ds = Dataset::from_table(&table).group_by(["grp"]);

    let linregr = session
        .train_grouped(&LinearRegression::new("y", "x"), &ds)
        .unwrap();
    assert_eq!(linregr.len(), 10);
    for (key, model) in &linregr {
        assert_eq!(model.num_rows, 1);
        let alone = filter_then_fit(
            &LinearRegression::new("y", "x"),
            &table,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(bits(&model.coef), bits(&alone.coef));
    }

    // Iterative path over single-row groups (labels 0/1).
    let mut labels = Table::new(table.schema().clone(), 3).unwrap();
    for i in 0..6 {
        labels
            .insert(Row::new(vec![
                Value::Int(i),
                Value::Double(f64::from(i % 2 == 0)),
                Value::DoubleArray(vec![1.0, i as f64 - 2.5]),
            ]))
            .unwrap();
    }
    let estimator = LogisticRegression::new("y", "x").with_max_iterations(3);
    let grouped = session
        .train_grouped(&estimator, &Dataset::from_table(&labels).group_by(["grp"]))
        .unwrap();
    assert_eq!(grouped.len(), 6);
    for (key, model) in &grouped {
        assert_eq!(model.num_rows, 1);
        let alone = filter_then_fit(
            &estimator,
            &labels,
            *session.executor(),
            None,
            key.clone(),
            &session,
        )
        .unwrap();
        assert_eq!(bits(&model.coef), bits(&alone.coef));
    }
}
