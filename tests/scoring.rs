//! Serving-subsystem equivalence properties.
//!
//! `Dataset::score` promises that running prediction as a chunked,
//! work-stealing scan pass — vectorized `predict_batch` overrides riding the
//! batched kernel tiers — is **bit-identical** to the naive per-row
//! `predict` loop, under both execution modes, every `MADLIB_SIMD` tier (CI
//! re-runs this suite with `MADLIB_SIMD=off MADLIB_THREADS=1`), NULL-bearing
//! and empty chunks, and filtered scans.  Grouped (catalog-routed) scoring
//! promises bit-identity to filtering each group out and scoring it with its
//! own model, including composite NULL/NaN/`-0.0` keys.  These tests enforce
//! both promises over randomized data, plus the catalog's typed error
//! surface and the k-NN terminal's mode/tie determinism.

use madlib::engine::expr::Predicate;
use madlib::engine::{
    Column, ColumnType, Database, Dataset, EngineError, Executor, GroupKey, GroupScorers, Row,
    Schema, Similarity, Table, Value,
};
use madlib::methods::classify::{DecisionTree, NaiveBayes, SvmModel};
use madlib::methods::cluster::KMeansModel;
use madlib::methods::regress::{LinearRegressionModel, LogisticRegressionModel};
use madlib::methods::{FeatureScorer, Predictor, Session};
use proptest::prelude::*;

/// Bit-exact prediction equality: `Double`s compare by bits (so NaN == NaN
/// and -0.0 != 0.0), everything else by value.
fn assert_predictions_eq(got: &[Value], want: &[Value], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let same = match (g, w) {
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        };
        assert!(same, "{context}: row {i}: got {g:?}, want {w:?}");
    }
}

fn linregr_model(coef: Vec<f64>) -> LinearRegressionModel {
    LinearRegressionModel {
        coef,
        r2: 0.0,
        std_err: Vec::new(),
        t_stats: Vec::new(),
        p_values: Vec::new(),
        condition_no: 0.0,
        num_rows: 0,
    }
}

fn logregr_model(coef: Vec<f64>) -> LogisticRegressionModel {
    LogisticRegressionModel {
        coef,
        std_err: Vec::new(),
        z_stats: Vec::new(),
        p_values: Vec::new(),
        log_likelihood: 0.0,
        num_iterations: 0,
        converged: true,
        num_rows: 0,
    }
}

fn svm_model(weights: Vec<f64>) -> SvmModel {
    SvmModel {
        weights,
        lambda: 1e-3,
        epochs: 0,
        final_objective: 0.0,
        num_rows: 0,
    }
}

fn kmeans_model(centroids: Vec<Vec<f64>>) -> KMeansModel {
    KMeansModel {
        centroids,
        inertia: 0.0,
        iterations: 0,
        converged: true,
        num_points: 0,
    }
}

/// Builds a `y (double) | x (double[], nullable)` table.
fn feature_table(
    points: &[(f64, Vec<f64>)],
    null_every: Option<usize>,
    segments: usize,
    chunk_capacity: usize,
) -> Table {
    let schema = Schema::new(vec![
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for (i, (y, x)) in points.iter().enumerate() {
        let features = if null_every.is_some_and(|n| i % n == 0) {
            Value::Null
        } else {
            Value::DoubleArray(x.clone())
        };
        table
            .insert(Row::new(vec![Value::Double(*y), features]))
            .unwrap();
    }
    table
}

/// The naive serving plan `Dataset::score` must reproduce bit-for-bit: walk
/// the filter-surviving rows in segment order and call the model's typed
/// per-row predict, NULL features scoring to NULL.
fn per_row_reference<P: Predictor>(dataset: &Dataset<'_>, model: &P) -> Vec<Value> {
    dataset
        .map_rows(|row, schema| {
            let value = row.get_named(schema, "x")?;
            if value.is_null() {
                return Ok(Value::Null);
            }
            model
                .predict_value(value.as_double_array()?)
                .map_err(madlib::engine::EngineError::invalid)
        })
        .unwrap()
}

fn both_executors() -> [Executor; 2] {
    [Executor::new(), Executor::row_at_a_time()]
}

proptest! {
    /// `Dataset::score` ≡ per-row predict, bit for bit: linear regression's
    /// `batch_dot` override, across both execution modes, ragged segment
    /// layouts, tiny chunks, NULL-bearing rows and filters.
    #[test]
    fn score_matches_per_row_predict(
        points in prop::collection::vec(
            (-100.0f64..100.0, prop::collection::vec(-10.0f64..10.0, 3)),
            1..120,
        ),
        coef in prop::collection::vec(-5.0f64..5.0, 3),
        segments in 1usize..5,
        chunk_capacity in prop_oneof![Just(4usize), Just(16usize), Just(1024usize)],
        null_every_raw in 0usize..8,
        with_filter in any::<bool>(),
    ) {
        let null_every = (null_every_raw > 0).then_some(null_every_raw);
        let table = feature_table(&points, null_every, segments, chunk_capacity);
        let model = linregr_model(coef);
        let scorer = FeatureScorer::new(&model, "x");
        for executor in both_executors() {
            let mut dataset = Dataset::from_table(&table).with_executor(executor);
            if with_filter {
                dataset = dataset.filter(Predicate::column_gt("y", 0.0));
            }
            let scored = dataset.score(&scorer).unwrap();
            let reference = per_row_reference(&dataset, &model);
            assert_predictions_eq(&scored, &reference, "linregr");
        }
    }

    /// Grouped catalog-routed scoring ≡ filter-then-predict per group, with
    /// double group keys exercising the NULL/NaN/`-0.0` corners.
    #[test]
    fn grouped_scoring_matches_filtered_runs(
        points in prop::collection::vec(
            (0usize..5, prop::collection::vec(-10.0f64..10.0, 2)),
            1..100,
        ),
        segments in 1usize..4,
        chunk_capacity in prop_oneof![Just(4usize), Just(16usize), Just(1024usize)],
    ) {
        // Key space includes NULL, NaN, -0.0 and 0.0 — all distinct groups.
        let keys = [
            Value::Null,
            Value::Double(f64::NAN),
            Value::Double(-0.0),
            Value::Double(0.0),
            Value::Double(1.5),
        ];
        let schema = Schema::new(vec![
            Column::new("k", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for (key_idx, x) in &points {
            table
                .insert(Row::new(vec![
                    keys[*key_idx].clone(),
                    Value::DoubleArray(x.clone()),
                ]))
                .unwrap();
        }
        // One distinct linregr model per possible key.
        let registry: Vec<(GroupKey, LinearRegressionModel)> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let coef = vec![1.0 + i as f64, -0.5 * i as f64];
                (GroupKey::from_value(key), linregr_model(coef))
            })
            .collect();
        let scorers = GroupScorers::new(
            "per_key",
            registry
                .iter()
                .map(|(key, model)| (key.clone(), FeatureScorer::new(model, "x")))
                .collect(),
        )
        .unwrap();
        for executor in both_executors() {
            let grouped = Dataset::from_table(&table)
                .with_executor(executor)
                .group_by(["k"]);
            let scored = grouped.score_per_group(&scorers).unwrap();
            prop_assert_eq!(scored.len(), points.len());
            // The naive plan: per group, filter the rows down and score them
            // with that group's model alone; predictions must land at the
            // same positions with the same bits.
            let row_keys: Vec<GroupKey> = Dataset::from_table(&table)
                .with_executor(executor)
                .map_rows(|row, _| Ok(GroupKey::from_value(row.get(0))))
                .unwrap();
            for (key, model) in &registry {
                let filtered = Dataset::from_table(&table)
                    .with_executor(executor)
                    .filter(Predicate::column_is_key("k", key.clone()))
                    .score(&FeatureScorer::new(model, "x"))
                    .unwrap();
                let positions: Vec<usize> = row_keys
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| *k == key)
                    .map(|(i, _)| i)
                    .collect();
                prop_assert_eq!(filtered.len(), positions.len());
                let routed: Vec<Value> =
                    positions.iter().map(|&i| scored[i].clone()).collect();
                assert_predictions_eq(&routed, &filtered, "grouped routing");
            }
        }
    }

    /// `top_k_by_score` is deterministic and mode-independent: both
    /// executors return the same rows and bit-identical scores, matching a
    /// naive sort of the per-row reference scores under both metrics.
    #[test]
    fn top_k_matches_naive_sort(
        points in prop::collection::vec(
            (-100.0f64..100.0, prop::collection::vec(-10.0f64..10.0, 4)),
            1..80,
        ),
        query in prop::collection::vec(-10.0f64..10.0, 4),
        (k, with_filter) in (1usize..12, any::<bool>()),
        segments in 1usize..4,
        chunk_capacity in prop_oneof![Just(4usize), Just(1024usize)],
        null_every_raw in 0usize..6,
    ) {
        let null_every = (null_every_raw > 1).then_some(null_every_raw);
        let table = feature_table(&points, null_every, segments, chunk_capacity);
        for metric in [Similarity::Dot, Similarity::Euclidean] {
            let mut results = Vec::new();
            for executor in both_executors() {
                let mut dataset = Dataset::from_table(&table).with_executor(executor);
                if with_filter {
                    dataset = dataset.filter(Predicate::column_gt("y", 0.0));
                }
                let top = dataset.top_k_by_score("x", &query, k, metric).unwrap();
                // Naive reference: score the surviving non-NULL rows in scan
                // order and stable-sort by score.
                let mut reference: Vec<(Row, f64)> = Vec::new();
                for row in dataset.collect_rows().unwrap() {
                    let value = row.get(1);
                    if value.is_null() {
                        continue;
                    }
                    let x = value.as_double_array().unwrap();
                    let score: f64 = match metric {
                        Similarity::Dot => x.iter().zip(&query).map(|(a, b)| a * b).sum(),
                        Similarity::Euclidean => x
                            .iter()
                            .zip(&query)
                            .map(|(a, b)| {
                                let d = a - b;
                                d * d
                            })
                            .sum(),
                    };
                    reference.push((row, score));
                }
                match metric {
                    Similarity::Dot => {
                        reference.sort_by(|a, b| b.1.total_cmp(&a.1));
                    }
                    Similarity::Euclidean => {
                        reference.sort_by(|a, b| a.1.total_cmp(&b.1));
                    }
                }
                reference.truncate(k);
                prop_assert_eq!(top.len(), reference.len());
                for ((row, score), (want_row, want_score)) in top.iter().zip(&reference) {
                    prop_assert_eq!(score.to_bits(), want_score.to_bits());
                    prop_assert_eq!(row, want_row);
                }
                results.push(top);
            }
            // Chunked ≡ row-at-a-time, rows and bits.
            let (a, b) = (&results[0], &results[1]);
            prop_assert_eq!(a.len(), b.len());
            for ((ra, sa), (rb, sb)) in a.iter().zip(b) {
                prop_assert_eq!(ra, rb);
                prop_assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }
}

/// Every model family's vectorized path agrees with its per-row predict —
/// the dot-product family on `batch_dot`, k-means on `batch_closest_column`,
/// tree and Bayes through the per-row default — on a NULL-bearing, filtered,
/// multi-segment table under both modes.
#[test]
fn all_model_families_score_bit_identically() {
    let points: Vec<(f64, Vec<f64>)> = (0..257)
        .map(|i| {
            let t = i as f64;
            (
                t - 128.0,
                vec![1.0, (t * 0.37) % 5.0 - 2.5, (t * 0.11) % 3.0, t % 7.0 - 3.0],
            )
        })
        .collect();
    let table = feature_table(&points, Some(9), 3, 16);

    let linregr = linregr_model(vec![0.5, -1.25, 2.0, 0.125]);
    let logregr = logregr_model(vec![-0.25, 1.0, -0.75, 0.5]);
    let svm = svm_model(vec![0.0625, -0.5, 1.5, -1.0]);
    let kmeans = kmeans_model(vec![
        vec![1.0, 0.0, 0.0, 0.0],
        vec![1.0, -2.0, 1.0, 2.0],
        vec![1.0, 2.0, 2.0, -2.0],
    ]);

    // Trained models for the per-row-only families.
    let labeled_schema = Schema::new(vec![
        Column::new("label", ColumnType::Text),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut labeled = Table::new(labeled_schema, 2).unwrap();
    for (y, x) in &points {
        let label = if *y > 0.0 { "pos" } else { "neg" };
        labeled
            .insert(Row::new(vec![
                Value::Text(label.to_owned()),
                Value::DoubleArray(x.clone()),
            ]))
            .unwrap();
    }
    let session = Session::new(Database::new(2).unwrap());
    let labeled_ds = Dataset::from_table(&labeled);
    let tree = session
        .train(
            &DecisionTree::new("label", "x").with_max_depth(4),
            &labeled_ds,
        )
        .unwrap();
    let bayes = session
        .train(&NaiveBayes::new("label", "x"), &labeled_ds)
        .unwrap();

    fn check<P: Predictor>(table: &Table, model: &P, context: &str) {
        let scorer = FeatureScorer::new(model, "x");
        for executor in both_executors() {
            for filtered in [false, true] {
                let mut dataset = Dataset::from_table(table).with_executor(executor);
                if filtered {
                    dataset = dataset.filter(Predicate::column_gt("y", -30.0));
                }
                let scored = dataset.score(&scorer).unwrap();
                let reference = per_row_reference(&dataset, model);
                assert_predictions_eq(&scored, &reference, context);
            }
        }
    }

    check(&table, &linregr, "linregr");
    check(&table, &logregr, "logregr");
    check(&table, &svm, "svm");
    check(&table, &kmeans, "kmeans");
    check(&table, &tree, "decision tree");
    check(&table, &bayes, "naive bayes");
}

/// Empty datasets and fully-filtered scans score to empty prediction
/// vectors in both modes; scoring a grouped dataset without a registry is a
/// typed error.
#[test]
fn empty_and_grouped_edges() {
    let table = feature_table(&[], None, 3, 16);
    let model = linregr_model(vec![1.0, 2.0]);
    let scorer = FeatureScorer::new(&model, "x");
    for executor in both_executors() {
        let scored = Dataset::from_table(&table)
            .with_executor(executor)
            .score(&scorer)
            .unwrap();
        assert!(scored.is_empty());
    }
    let populated = feature_table(&[(1.0, vec![1.0, 2.0]), (2.0, vec![3.0, 4.0])], None, 2, 16);
    for executor in both_executors() {
        let scored = Dataset::from_table(&populated)
            .with_executor(executor)
            .filter(Predicate::column_gt("y", 100.0))
            .score(&scorer)
            .unwrap();
        assert!(scored.is_empty());
    }
    // Ungrouped serving terminals reject grouped datasets with guidance.
    let grouped = Dataset::from_table(&populated).group_by(["y"]);
    assert!(matches!(
        grouped.score(&scorer),
        Err(EngineError::InvalidArgument { message }) if message.contains("score_per_group")
    ));
    assert!(grouped
        .top_k_by_score("x", &[0.0, 0.0], 1, Similarity::Dot)
        .is_err());
}

/// The catalog's typed serving surface end to end: register by name, score
/// by name through the session, and surface `ModelNotFound` / wrong-type /
/// missing-group errors as typed values.
#[test]
fn catalog_routed_serving_and_errors() {
    let database = Database::new(2).unwrap();
    let session = Session::new(database.clone());
    let schema = Schema::new(vec![
        Column::new("region", ColumnType::Text),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    database.create_table("customers", schema).unwrap();
    database
        .with_table_mut("customers", |t| {
            for i in 0..40 {
                let region = if i % 2 == 0 { "north" } else { "south" };
                t.insert(Row::new(vec![
                    Value::Text(region.to_owned()),
                    Value::DoubleArray(vec![1.0, i as f64]),
                ]))?;
            }
            Ok(())
        })
        .unwrap();

    // Single model: register + score by name.
    let model = linregr_model(vec![2.0, 0.5]);
    session.register_model("churn", model.clone());
    let dataset = session.dataset("customers").unwrap();
    let scored = session
        .score::<LinearRegressionModel>(&dataset, "churn", "x")
        .unwrap();
    let reference = per_row_reference(&dataset, &model);
    assert_predictions_eq(&scored, &reference, "catalog single");

    // Grouped registry: one model per region, routed by the dataset's keys.
    let north = linregr_model(vec![1.0, 1.0]);
    let south = linregr_model(vec![-1.0, 0.25]);
    database
        .models()
        .register_grouped(
            "churn_by_region",
            vec![
                (
                    GroupKey::from_value(&Value::Text("north".into())),
                    north.clone(),
                ),
                (
                    GroupKey::from_value(&Value::Text("south".into())),
                    south.clone(),
                ),
            ],
        )
        .unwrap();
    let grouped = dataset.reborrow().group_by(["region"]);
    let routed = session
        .score::<LinearRegressionModel>(&grouped, "churn_by_region", "x")
        .unwrap();
    for (i, row) in dataset.collect_rows().unwrap().iter().enumerate() {
        let region = row.get(0).as_text().unwrap();
        let model = if region == "north" { &north } else { &south };
        let x = row.get(1).as_double_array().unwrap();
        let want = model.predict_value(x).unwrap();
        assert_predictions_eq(
            std::slice::from_ref(&routed[i]),
            std::slice::from_ref(&want),
            "catalog grouped",
        );
    }

    // Typed errors: unknown name, wrong type, missing group.
    assert!(matches!(
        session.score::<LinearRegressionModel>(&dataset, "missing", "x"),
        Err(e) if e.to_string().contains("model not found")
    ));
    assert!(matches!(
        database.models().get::<KMeansModel>("churn").unwrap_err(),
        EngineError::TypeMismatch { .. }
    ));
    let west_only = GroupScorers::new(
        "churn_by_region",
        vec![(
            GroupKey::from_value(&Value::Text("north".into())),
            FeatureScorer::new(&north, "x"),
        )],
    )
    .unwrap();
    for executor in both_executors() {
        let err = grouped
            .reborrow()
            .with_executor(executor)
            .score_per_group(&west_only)
            .unwrap_err();
        match err {
            EngineError::ModelNotFound { name, group } => {
                assert_eq!(name, "churn_by_region");
                assert!(group.is_some());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}

/// `score_into` materializes the predictions as a catalog table whose
/// segment placement mirrors the source.
#[test]
fn score_into_materializes_predictions() {
    let database = Database::new(3).unwrap();
    let points: Vec<(f64, Vec<f64>)> = (0..50).map(|i| (i as f64, vec![1.0, i as f64])).collect();
    let table = feature_table(&points, Some(7), 3, 8);
    let model = linregr_model(vec![3.0, -0.5]);
    let scorer = FeatureScorer::new(&model, "x");
    let dataset = Dataset::from_table(&table);
    dataset
        .score_into(&scorer, &database, "predictions")
        .unwrap();
    let predictions = database.table("predictions").unwrap();
    assert_eq!(predictions.schema().columns().len(), 1);
    assert_eq!(predictions.num_segments(), table.num_segments());
    let scored = dataset.score(&scorer).unwrap();
    let materialized: Vec<Value> = Dataset::from_table(&predictions)
        .map_rows(|row, _| Ok(row.get(0).clone()))
        .unwrap();
    assert_predictions_eq(&materialized, &scored, "score_into");
    // Per segment, predictions line up with the source segment's rows.
    for seg in 0..table.num_segments() {
        assert_eq!(
            predictions.segment(seg).len(),
            table.segment(seg).len(),
            "segment {seg}"
        );
    }
    // Name collisions surface as the catalog's typed error.
    assert!(matches!(
        dataset.score_into(&scorer, &database, "predictions"),
        Err(EngineError::TableAlreadyExists { .. })
    ));
}
