//! End-to-end durability: recovery hands analytics a bit-identical world.
//!
//! The engine-level crash harness (`crates/engine/tests/durability.rs`)
//! proves recovery reproduces the committed table prefix byte-for-byte.
//! These tests close the loop at the analytics layer: models trained over a
//! recovered database are bit-for-bit the models trained before the crash,
//! incremental views re-registered after recovery refresh to the same bits,
//! and appending *after* recovery continues exactly as if the crash never
//! happened — under both execution modes.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use madlib::engine::aggregate::SumAggregate;
use madlib::engine::{row, Database, Executor, MaterializedAggregate, Row, Value};
use madlib::methods::datasets::labeled_point_schema;
use madlib::methods::regress::LinearRegression;
use madlib::methods::Session;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let id = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "madlib_e2e_durability_{tag}_{}_{id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn executor(row_mode: bool) -> Executor {
    if row_mode {
        Executor::row_at_a_time()
    } else {
        Executor::new()
    }
}

/// Deterministic labeled points: y = 2 + 3·x₁ − x₂ plus a fixed "noise"
/// term, so the fitted coefficients are nontrivial but reproducible.
fn labeled_rows(range: std::ops::Range<i64>) -> Vec<Row> {
    range
        .map(|i| {
            let x1 = (i as f64) * 0.25;
            let x2 = ((i * 7) % 11) as f64 - 5.0;
            let noise = ((i * 13) % 17) as f64 * 0.01;
            let y = 2.0 + 3.0 * x1 - x2 + noise;
            row![y, vec![1.0, x1, x2]]
        })
        .collect()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn train_coef_bits(db: &Database, exec: Executor) -> Vec<u64> {
    let session = Session::new(db.clone()).with_executor(exec);
    let dataset = session.database().dataset("points").unwrap();
    let model = session
        .train(&LinearRegression::new("y", "x"), &dataset)
        .unwrap();
    bits(&model.coef)
}

/// A model trained over the recovered database is bit-for-bit the model
/// trained before the crash, and appends after recovery continue exactly
/// as on a database that never crashed — both execution modes, with and
/// without a checkpoint in the history.
#[test]
fn recovered_tables_train_bit_identically() {
    for row_mode in [false, true] {
        for checkpoint in [false, true] {
            let scratch = ScratchDir::new("train");
            // A control database that never goes down.
            let control = Database::new(2).unwrap();
            control
                .create_table_with_chunk_capacity("points", labeled_point_schema(), 8)
                .unwrap();
            control.append_rows("points", labeled_rows(0..40)).unwrap();

            let before;
            {
                let db = Database::open(scratch.path(), 2).unwrap();
                db.create_table_with_chunk_capacity("points", labeled_point_schema(), 8)
                    .unwrap();
                db.append_rows("points", labeled_rows(0..25)).unwrap();
                if checkpoint {
                    db.checkpoint().unwrap();
                }
                db.append_rows("points", labeled_rows(25..40)).unwrap();
                before = train_coef_bits(&db, executor(row_mode));
                assert_eq!(
                    before,
                    train_coef_bits(&control, executor(row_mode)),
                    "durable and in-memory databases must agree pre-crash"
                );
                // Crash: the database is dropped with a dirty WAL tail.
            }
            let recovered = Database::recover(scratch.path()).unwrap();
            assert_eq!(
                train_coef_bits(&recovered, executor(row_mode)),
                before,
                "row_mode={row_mode} checkpoint={checkpoint}: retrain after recovery diverged"
            );

            // Life goes on: appends after recovery match the control.
            recovered
                .append_rows("points", labeled_rows(40..60))
                .unwrap();
            control.append_rows("points", labeled_rows(40..60)).unwrap();
            assert_eq!(
                train_coef_bits(&recovered, executor(row_mode)),
                train_coef_bits(&control, executor(row_mode)),
                "row_mode={row_mode} checkpoint={checkpoint}: post-recovery appends diverged"
            );
        }
    }
}

/// Incremental training over a recovered database: a fresh
/// `train_incremental` over the recovered table produces the same bits as
/// the pre-crash refreshed model, and further installments keep agreeing
/// with a never-crashed control.
#[test]
fn incremental_models_resume_bit_identically_after_recovery() {
    for row_mode in [false, true] {
        let scratch = ScratchDir::new("incr");
        let refreshed_bits;
        {
            let db = Database::open(scratch.path(), 2).unwrap();
            db.create_table_with_chunk_capacity("points", labeled_point_schema(), 8)
                .unwrap();
            db.append_rows("points", labeled_rows(0..20)).unwrap();
            let session = Session::new(db.clone()).with_executor(executor(row_mode));
            let est = LinearRegression::new("y", "x");
            session.train_incremental(&est, "points", "lin").unwrap();
            db.append_rows("points", labeled_rows(20..32)).unwrap();
            let refreshed = session.refresh(&est, "points", "lin").unwrap();
            refreshed_bits = bits(&refreshed.coef);
        }
        let recovered = Database::recover(scratch.path()).unwrap();
        // Views and cataloged models are rebuilt from the recovered tables:
        // a fresh incremental train must land on the same bits the refresh
        // reached before the crash (the single-pass bit-identity contract).
        let session = Session::new(recovered.clone()).with_executor(executor(row_mode));
        let est = LinearRegression::new("y", "x");
        let retrained = session.train_incremental(&est, "points", "lin").unwrap();
        assert_eq!(bits(&retrained.coef), refreshed_bits, "row_mode={row_mode}");

        // And refreshes keep working across the recovery boundary.
        let control = Database::new(2).unwrap();
        control
            .create_table_with_chunk_capacity("points", labeled_point_schema(), 8)
            .unwrap();
        control.append_rows("points", labeled_rows(0..44)).unwrap();
        recovered
            .append_rows("points", labeled_rows(32..44))
            .unwrap();
        let refreshed = session.refresh(&est, "points", "lin").unwrap();
        let control_session = Session::new(control).with_executor(executor(row_mode));
        let full = control_session
            .train(
                &LinearRegression::new("y", "x"),
                &control_session.database().dataset("points").unwrap(),
            )
            .unwrap();
        assert_eq!(
            bits(&refreshed.coef),
            bits(&full.coef),
            "row_mode={row_mode}"
        );
    }
}

/// Raw materialized views re-registered over a recovered database refresh
/// to the same result as before the crash, and keep absorbing appends.
#[test]
fn materialized_views_rebuild_identically_after_recovery() {
    let scratch = ScratchDir::new("views");
    let before;
    {
        let db = Database::open(scratch.path(), 2).unwrap();
        db.create_table_with_chunk_capacity("points", labeled_point_schema(), 8)
            .unwrap();
        db.append_rows("points", labeled_rows(0..30)).unwrap();
        db.register_view(
            "y_sum",
            "points",
            Box::new(MaterializedAggregate::new(
                SumAggregate::new("y"),
                &Executor::new(),
            )),
        )
        .unwrap();
        before = db
            .refresh_view("y_sum", |state| {
                state
                    .as_any_mut()
                    .downcast_mut::<MaterializedAggregate<SumAggregate>>()
                    .expect("sum view")
                    .finalize()
            })
            .unwrap();
    }
    let recovered = Database::recover(scratch.path()).unwrap();
    recovered
        .register_view(
            "y_sum",
            "points",
            Box::new(MaterializedAggregate::new(
                SumAggregate::new("y"),
                &Executor::new(),
            )),
        )
        .unwrap();
    let refresh = |db: &Database| {
        db.refresh_view("y_sum", |state| {
            state
                .as_any_mut()
                .downcast_mut::<MaterializedAggregate<SumAggregate>>()
                .expect("sum view")
                .finalize()
        })
        .unwrap()
    };
    assert_eq!(refresh(&recovered).to_bits(), before.to_bits());

    // The rebuilt view keeps absorbing post-recovery appends; spot-check
    // against a direct aggregate over the same table.
    recovered
        .append_rows("points", labeled_rows(30..41))
        .unwrap();
    let after = refresh(&recovered);
    let expect = {
        let session = Session::new(recovered.clone());
        let sum: f64 = session
            .database()
            .dataset("points")
            .unwrap()
            .aggregate(&SumAggregate::new("y"))
            .unwrap();
        sum
    };
    assert_eq!(after.to_bits(), expect.to_bits());

    // Null-bearing appends survive a second crash/recover cycle too.
    recovered
        .append_rows("points", [Row::new(vec![Value::Null, Value::Null])])
        .unwrap();
    recovered.checkpoint().unwrap();
    let mark = refresh(&recovered);
    drop(recovered);
    let again = Database::recover(scratch.path()).unwrap();
    again
        .register_view(
            "y_sum",
            "points",
            Box::new(MaterializedAggregate::new(
                SumAggregate::new("y"),
                &Executor::new(),
            )),
        )
        .unwrap();
    assert_eq!(refresh(&again).to_bits(), mark.to_bits());
}
