//! Row-path / chunk-path equivalence properties.
//!
//! The engine's chunk-at-a-time execution path promises to be *bit-identical*
//! to the original row-at-a-time path: every `transition_chunk` override must
//! produce exactly the state the per-row `transition` would, including
//! floating-point accumulation order.  These property tests enforce that for
//! the ported hot aggregates — linear regression, the k-means Lloyd step, and
//! the convex IGD epoch — plus the built-in SQL aggregates, over randomized
//! data with NULL-bearing rows, ragged partitions, empty segments, and chunk
//! capacities small enough that every scan crosses several chunk boundaries.

use madlib::convex::objectives::{LeastSquaresObjective, LogisticObjective};
use madlib::convex::{IgdConfig, IgdRunner, StepSchedule};
use madlib::engine::aggregate::{Aggregate, AvgAggregate, CountAggregate, SumAggregate};
use madlib::engine::expr::Predicate;
use madlib::engine::{
    row, Column, ColumnType, Database, Dataset, Executor, Row, Schema, Table, Value,
};
use madlib::methods::cluster::KMeans;
use madlib::methods::datasets::labeled_point_schema;
use madlib::methods::regress::LinearRegression;
use madlib::methods::{Estimator, Session};
use madlib::sketch::{FmDistinctAggregate, MostFrequentValuesAggregate, SummaryAggregate};
use proptest::prelude::*;

/// The two execution paths under comparison.
fn executors() -> (Executor, Executor) {
    (Executor::new(), Executor::row_at_a_time())
}

/// A throwaway training session (single-pass estimators never touch its
/// database).
fn session() -> Session {
    Session::new(Database::new(1).unwrap())
}

/// Builds the dataset for one execution path.
fn dataset<'a>(table: &'a Table, executor: &Executor) -> Dataset<'a> {
    Dataset::from_table(table).with_executor(*executor)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Exposes the raw linear-regression transition state (row count + `XᵀX`
/// accumulator bits) as the aggregate output — the grouped-scan equivalence
/// tests compare this instead of fitted models, because per-group fits of
/// tiny random groups can be singular, which is finalize's concern rather
/// than the scan's.
struct LinregrStateProbe(LinearRegression);

impl Aggregate for LinregrStateProbe {
    type State = <LinearRegression as Aggregate>::State;
    type Output = (u64, Vec<u64>);
    fn initial_state(&self) -> Self::State {
        self.0.initial_state()
    }
    fn transition(
        &self,
        state: &mut Self::State,
        row: &Row,
        schema: &Schema,
    ) -> madlib::engine::Result<()> {
        self.0.transition(state, row, schema)
    }
    fn transition_chunk(
        &self,
        state: &mut Self::State,
        chunk: &madlib::engine::RowChunk,
        schema: &Schema,
    ) -> madlib::engine::Result<()> {
        self.0.transition_chunk(state, chunk, schema)
    }
    fn merge(&self, left: Self::State, right: Self::State) -> Self::State {
        self.0.merge(left, right)
    }
    fn finalize(&self, state: Self::State) -> madlib::engine::Result<Self::Output> {
        Ok((
            state.num_rows,
            state
                .x_transp_x
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        ))
    }
}

/// Builds a labeled-point table with a deliberately tiny chunk capacity so
/// scans cross many chunk boundaries, plus optional NULL rows.
fn labeled_table(
    points: &[(f64, [f64; 3])],
    null_every: Option<usize>,
    segments: usize,
    chunk_capacity: usize,
) -> Table {
    let mut t = Table::new(labeled_point_schema(), segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    for (i, (y, x)) in points.iter().enumerate() {
        if null_every.is_some_and(|n| i % n == 0) {
            t.insert(Row::new(vec![Value::Null, Value::Null])).unwrap();
        } else {
            t.insert(row![*y, x.to_vec()]).unwrap();
        }
    }
    t
}

proptest! {
    /// Linear regression: the flagship Figure 4 aggregate.  The chunked
    /// transition (tiled rank-k XᵀX, batched Xᵀy) must reproduce the per-row
    /// fit bit for bit, across ragged segment sizes and chunk boundaries.
    #[test]
    fn linregr_chunk_path_is_bit_identical(
        points in prop::collection::vec((-10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64]), 1..120),
        segments in 1usize..7,
        chunk_capacity in 1usize..40,
    ) {
        let table = labeled_table(&points, None, segments, chunk_capacity);
        let (chunked, row_based) = executors();
        let a = LinearRegression::new("y", "x").fit(&dataset(&table, &chunked), &session()).unwrap();
        let b = LinearRegression::new("y", "x").fit(&dataset(&table, &row_based), &session()).unwrap();
        prop_assert_eq!(bits(&a.coef), bits(&b.coef));
        prop_assert_eq!(a.r2.to_bits(), b.r2.to_bits());
        prop_assert_eq!(bits(&a.std_err), bits(&b.std_err));
        prop_assert_eq!(bits(&a.t_stats), bits(&b.t_stats));
        prop_assert_eq!(a.num_rows, b.num_rows);
    }

    /// NULL-bearing rows: both paths must reject them with an error (the
    /// per-row path fails on the first NULL; the chunk path falls back and
    /// reproduces it), and the built-in NULL-skipping aggregates must agree
    /// bit for bit.
    #[test]
    fn null_rows_behave_identically(
        points in prop::collection::vec((-10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64]), 2..60),
        null_every in 2usize..6,
        segments in 1usize..5,
        chunk_capacity in 1usize..20,
    ) {
        let table = labeled_table(&points, Some(null_every), segments, chunk_capacity);
        let (chunked, row_based) = executors();

        // Regression input with NULLs errors on both paths.
        prop_assert!(LinearRegression::new("y", "x").fit(&dataset(&table, &chunked), &session()).is_err());
        prop_assert!(LinearRegression::new("y", "x").fit(&dataset(&table, &row_based), &session()).is_err());

        // SQL aggregates skip NULLs identically.
        let sum_c = chunked.aggregate(&table, &SumAggregate::new("y")).unwrap();
        let sum_r = row_based.aggregate(&table, &SumAggregate::new("y")).unwrap();
        prop_assert_eq!(sum_c.to_bits(), sum_r.to_bits());
        let avg_c = chunked.aggregate(&table, &AvgAggregate::new("y")).unwrap();
        let avg_r = row_based.aggregate(&table, &AvgAggregate::new("y")).unwrap();
        prop_assert_eq!(avg_c.map(f64::to_bits), avg_r.map(f64::to_bits));

        // Chunk-level predicate evaluation agrees with per-row evaluation,
        // NULLs never matching.
        let pred = Predicate::column_gt("y", 0.0).or(Predicate::ColumnIsNull { column: "y".into() });
        let (_, stats_c) = chunked
            .aggregate_with_stats(&table, &madlib::engine::aggregate::CountAggregate, Some(&pred))
            .unwrap();
        let (_, stats_r) = row_based
            .aggregate_with_stats(&table, &madlib::engine::aggregate::CountAggregate, Some(&pred))
            .unwrap();
        prop_assert_eq!(stats_c.rows_aggregated, stats_r.rows_aggregated);
    }

    /// k-means: every Lloyd step's assignment and barycenter accumulation
    /// must match, so the whole fit (same seeding) is bit-identical.
    #[test]
    fn kmeans_chunk_path_is_bit_identical(
        points in prop::collection::vec([-20.0..20.0f64, -20.0..20.0f64], 8..100),
        k in 1usize..5,
        segments in 1usize..5,
        chunk_capacity in 1usize..30,
        seed in 0u64..1000,
    ) {
        prop_assume!(points.len() >= k);
        let schema = madlib::methods::datasets::points_schema();
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for (i, p) in points.iter().enumerate() {
            table.insert(row![i as i64, p.to_vec()]).unwrap();
        }
        let (chunked, row_based) = executors();
        let db = Database::new(segments).unwrap();
        let fit = |exec: &Executor| {
            Session::new(db.clone())
                .with_executor(*exec)
                .train(
                    &KMeans::new("coords", k)
                        .unwrap()
                        .with_seed(seed)
                        .with_max_iterations(15),
                    &Dataset::from_table(&table),
                )
                .unwrap()
        };
        let a = fit(&chunked);
        let b = fit(&row_based);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.converged, b.converged);
        for (ca, cb) in a.centroids.iter().zip(&b.centroids) {
            prop_assert_eq!(bits(ca), bits(cb));
        }
        prop_assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    }

    /// The IGD epoch: sequential SGD over chunks must replay the exact
    /// per-row update sequence for both the vectorized least-squares /
    /// logistic objectives and (via fallback) any other objective.
    #[test]
    fn igd_chunk_path_is_bit_identical(
        points in prop::collection::vec((-5.0..5.0f64, [-2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64]), 4..80),
        segments in 1usize..5,
        chunk_capacity in 1usize..25,
        epochs in 1usize..8,
    ) {
        let table = labeled_table(&points, None, segments, chunk_capacity);
        let (chunked, row_based) = executors();
        let db = Database::new(segments).unwrap();
        let config = IgdConfig {
            max_epochs: epochs,
            tolerance: 1e-12,
            schedule: StepSchedule::Constant(0.01),
        };

        let objective = LeastSquaresObjective::new("y", "x", 3);
        let run = |exec: &Executor| {
            IgdRunner::new(config.clone())
                .run(exec, &db, &table, &objective, vec![0.0; 3])
                .unwrap()
        };
        let a = run(&chunked);
        let b = run(&row_based);
        prop_assert_eq!(bits(&a.model), bits(&b.model));
        prop_assert_eq!(a.epochs, b.epochs);
        prop_assert_eq!(a.objective_value.to_bits(), b.objective_value.to_bits());

        // Logistic objective over ±1-ish labels.
        let logistic = LogisticObjective::new("y", "x", 3);
        let la = IgdRunner::new(config.clone())
            .run(&chunked, &db, &table, &logistic, vec![0.0; 3])
            .unwrap();
        let lb = IgdRunner::new(config.clone())
            .run(&row_based, &db, &table, &logistic, vec![0.0; 3])
            .unwrap();
        prop_assert_eq!(bits(&la.model), bits(&lb.model));
    }

    /// Grouped aggregation: the segment-parallel chunked grouped scan must be
    /// bit-identical to the grouped row-at-a-time scan — same groups, same
    /// key order, same per-group states — across ragged partitions, chunk
    /// boundaries, NULL group keys, tricky float keys (-0.0 / NaN), group
    /// counts that exercise both the gather path and the per-row fallback,
    /// and filtered scans.
    #[test]
    fn grouped_chunked_equals_grouped_row_at_a_time(
        points in prop::collection::vec((0usize..12, -10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64]), 1..150),
        distinct_keys in 1usize..12,
        (segments, chunk_capacity) in (1usize..6, 1usize..40),
        key_flavor in 0usize..3,
        null_every_raw in 0usize..6,
        filtered in any::<bool>(),
    ) {
        // 0/1 mean "no NULL keys" (the vendored proptest has no option strategy).
        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let schema = Schema::new(vec![
            Column::new("grp", match key_flavor {
                0 => ColumnType::Text,
                1 => ColumnType::Int,
                _ => ColumnType::Double,
            }),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for (i, (key, y, x)) in points.iter().enumerate() {
            let k = key % distinct_keys;
            let group: Value = if null_every.is_some_and(|n| i % n == 0) {
                Value::Null
            } else {
                match key_flavor {
                    0 => Value::Text(format!("g{k}")),
                    1 => Value::Int(k as i64 - 4),
                    // Exercise -0.0 / 0.0 / NaN as live group keys.
                    _ => match k {
                        0 => Value::Double(0.0),
                        1 => Value::Double(-0.0),
                        2 => Value::Double(f64::NAN),
                        k => Value::Double(k as f64),
                    },
                }
            };
            table
                .insert(Row::new(vec![group, Value::Double(*y), Value::DoubleArray(x.to_vec())]))
                .unwrap();
        }
        let filter = filtered.then(|| Predicate::column_gt("y", 0.0));
        let (chunked, row_based) = executors();
        let grouped_ds = |exec: &Executor| {
            let mut ds = dataset(&table, exec).group_by(["grp"]);
            if let Some(pred) = &filter {
                ds = ds.filter(pred.clone());
            }
            ds
        };

        // count(*) and sum(y) per group: counts are exact, sums must match
        // bit for bit.
        let count_c = grouped_ds(&chunked)
            .aggregate_per_group(&CountAggregate)
            .unwrap();
        let count_r = grouped_ds(&row_based)
            .aggregate_per_group(&CountAggregate)
            .unwrap();
        prop_assert_eq!(count_c.len(), count_r.len());
        for ((ka, ca), (kb, cb)) in count_c.iter().zip(&count_r) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(ca, cb);
        }
        let expected_rows: u64 = count_c.iter().map(|(_, c)| c).sum();
        let survivors = if let Some(pred) = &filter {
            table.iter().filter(|r| pred.evaluate(r, table.schema()).unwrap()).count() as u64
        } else {
            points.len() as u64
        };
        prop_assert_eq!(expected_rows, survivors);

        let sum_c = grouped_ds(&chunked)
            .aggregate_per_group(&SumAggregate::new("y"))
            .unwrap();
        let sum_r = grouped_ds(&row_based)
            .aggregate_per_group(&SumAggregate::new("y"))
            .unwrap();
        prop_assert_eq!(sum_c.len(), sum_r.len());
        for ((ka, va), (kb, vb)) in sum_c.iter().zip(&sum_r) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }

        // One linear regression per group — the Section 4.2 flagship — runs
        // the vectorized kernels on the gather path; states must still be
        // bit-identical.
        if null_every.is_none() {
            let scan = LinregrStateProbe(LinearRegression::new("y", "x"));
            let lin_c = grouped_ds(&chunked).aggregate_per_group(&scan).unwrap();
            let lin_r = grouped_ds(&row_based).aggregate_per_group(&scan).unwrap();
            prop_assert_eq!(lin_c.len(), lin_r.len());
            for ((ka, sa), (kb, sb)) in lin_c.iter().zip(&lin_r) {
                prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
                prop_assert_eq!(sa, sb);
            }
        }
    }

    /// High-cardinality grouped scans — at least as many distinct groups as
    /// any chunk holds rows, so the chunked path runs its radix partition
    /// pass (bucket staging across chunks + batched per-group flushes)
    /// instead of direct per-chunk gathers.  The partitioned scan must stay
    /// bit-identical to `ExecutionMode::RowAtATime`: same groups, same key
    /// order, same per-group state bits — across ragged partitions, empty
    /// segments, filtered scans, and strides that scatter a group's rows
    /// over many chunks.
    #[test]
    fn high_cardinality_radix_path_is_bit_identical(
        num_rows in 0usize..260,
        segments in 1usize..8,
        chunk_capacity in 1usize..33,
        group_divisor in 1usize..3,
        key_stride in 1usize..5,
        filtered in any::<bool>(),
    ) {
        // groups ≥ chunk capacity whenever the table is big enough to have
        // full chunks, which pushes every full chunk into the radix path.
        let num_groups = (num_rows / group_divisor).max(1);
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Int),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for i in 0..num_rows {
            let key = ((i * key_stride) % num_groups) as i64;
            let y = ((i * 37) % 19) as f64 - 9.0;
            let x = vec![1.0, (i % 7) as f64 - 3.0, ((i * 13) % 11) as f64 * 0.5];
            table
                .insert(Row::new(vec![
                    Value::Int(key),
                    Value::Double(y),
                    Value::DoubleArray(x),
                ]))
                .unwrap();
        }
        let filter = filtered.then(|| Predicate::column_gt("y", 0.0));
        let (chunked, row_based) = executors();
        let grouped_ds = |exec: &Executor| {
            let mut ds = dataset(&table, exec).group_by(["grp"]);
            if let Some(pred) = &filter {
                ds = ds.filter(pred.clone());
            }
            ds
        };

        let count_c = grouped_ds(&chunked).aggregate_per_group(&CountAggregate).unwrap();
        let count_r = grouped_ds(&row_based).aggregate_per_group(&CountAggregate).unwrap();
        prop_assert_eq!(&count_c, &count_r);
        let sum_c = grouped_ds(&chunked)
            .aggregate_per_group(&SumAggregate::new("y"))
            .unwrap();
        let sum_r = grouped_ds(&row_based)
            .aggregate_per_group(&SumAggregate::new("y"))
            .unwrap();
        prop_assert_eq!(sum_c.len(), sum_r.len());
        for ((ka, va), (kb, vb)) in sum_c.iter().zip(&sum_r) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }

        // The linregr transition state — the accumulation the radix pass
        // batches through the tiled kernels — must match bit for bit.
        let scan = LinregrStateProbe(LinearRegression::new("y", "x"));
        let lin_c = grouped_ds(&chunked).aggregate_per_group(&scan).unwrap();
        let lin_r = grouped_ds(&row_based).aggregate_per_group(&scan).unwrap();
        prop_assert_eq!(lin_c.len(), lin_r.len());
        for ((ka, sa), (kb, sb)) in lin_c.iter().zip(&lin_r) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(sa, sb);
        }
    }

    /// Sketch adapters: the chunked text-column fast paths must produce
    /// exactly the states the per-row transitions produce, including under
    /// filters and NULLs.
    #[test]
    fn sketch_adapters_chunked_equals_per_row(
        words in prop::collection::vec(0usize..40, 1..200),
        segments in 1usize..6,
        chunk_capacity in 1usize..30,
        null_every_raw in 0usize..5,
        filtered in any::<bool>(),
    ) {
        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let schema = Schema::new(vec![
            Column::new("word", ColumnType::Text),
            Column::new("score", ColumnType::Double),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for (i, w) in words.iter().enumerate() {
            if null_every.is_some_and(|n| i % n == 0) {
                table.insert(Row::new(vec![Value::Null, Value::Null])).unwrap();
            } else {
                table.insert(row![format!("w{w}"), i as f64]).unwrap();
            }
        }
        let filter = filtered.then(|| Predicate::column_lt("score", words.len() as f64 / 2.0));
        let (chunked, row_based) = executors();

        let filtered_ds = |exec: &Executor| {
            let mut ds = dataset(&table, exec);
            if let Some(pred) = &filter {
                ds = ds.filter(pred.clone());
            }
            ds
        };

        let fm = FmDistinctAggregate::new("word");
        let a = filtered_ds(&chunked).aggregate(&fm).unwrap();
        let b = filtered_ds(&row_based).aggregate(&fm).unwrap();
        prop_assert_eq!(a.to_bits(), b.to_bits());

        let mfv = MostFrequentValuesAggregate::new("word", 50);
        let a = filtered_ds(&chunked).aggregate(&mfv).unwrap();
        let b = filtered_ds(&row_based).aggregate(&mfv).unwrap();
        prop_assert_eq!(a, b);

        let summary = SummaryAggregate::new("score");
        let a = filtered_ds(&chunked).aggregate(&summary).unwrap();
        let b = filtered_ds(&row_based).aggregate(&summary).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Chunks alternating between low and high cardinality interleave the
    /// direct-gather path with radix staging; the staged buckets must flush
    /// before any later direct transition of the same groups, or a group
    /// would see its rows out of order.  This pins the exact interleavings:
    /// single-key chunks, radix chunks sharing keys with earlier direct
    /// chunks, direct chunks over keys with staged rows, and a trailing
    /// partial chunk of brand-new keys.
    #[test]
    fn radix_staging_interleaves_with_direct_chunks_bit_identically(
        filtered in any::<bool>(),
    ) {
        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Int),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        // One segment with 64-row chunks, so the block structure below maps
        // one block to one chunk exactly.
        let mut table = Table::new(schema, 1)
            .unwrap()
            .with_chunk_capacity(64)
            .unwrap();
        let key_of = |block: usize, i: usize| -> i64 {
            match block {
                0 => 0,                  // single-key chunk (direct)
                1 => i as i64,           // 64 distinct keys incl. 0 (radix)
                2 => 1,                  // single-key chunk over a staged key
                3 => 32 + i as i64,      // radix again, half old half new keys
                4 => 32 + (i % 16) as i64, // 16 staged keys × 4 rows (direct)
                _ => 100 + i as i64,     // trailing partial chunk, new keys
            }
        };
        let mut row_idx = 0usize;
        for block in 0..6 {
            let rows = if block == 5 { 10 } else { 64 };
            for i in 0..rows {
                let y = ((row_idx * 29) % 13) as f64 - 6.0;
                let x = vec![1.0, (row_idx % 5) as f64 - 2.0, ((row_idx * 7) % 9) as f64];
                table
                    .insert(Row::new(vec![
                        Value::Int(key_of(block, i)),
                        Value::Double(y),
                        Value::DoubleArray(x),
                    ]))
                    .unwrap();
                row_idx += 1;
            }
        }
        let filter = filtered.then(|| Predicate::column_gt("y", 0.0));
        let (chunked, row_based) = executors();
        let grouped_ds = |exec: &Executor| {
            let mut ds = dataset(&table, exec).group_by(["grp"]);
            if let Some(pred) = &filter {
                ds = ds.filter(pred.clone());
            }
            ds
        };

        let scan = LinregrStateProbe(LinearRegression::new("y", "x"));
        let lin_c = grouped_ds(&chunked).aggregate_per_group(&scan).unwrap();
        let lin_r = grouped_ds(&row_based).aggregate_per_group(&scan).unwrap();
        prop_assert_eq!(lin_c.len(), lin_r.len());
        for ((ka, sa), (kb, sb)) in lin_c.iter().zip(&lin_r) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(sa, sb);
        }
        let sum_c = grouped_ds(&chunked)
            .aggregate_per_group(&SumAggregate::new("y"))
            .unwrap();
        let sum_r = grouped_ds(&row_based)
            .aggregate_per_group(&SumAggregate::new("y"))
            .unwrap();
        prop_assert_eq!(sum_c.len(), sum_r.len());
        for ((ka, va), (kb, vb)) in sum_c.iter().zip(&sum_r) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    /// Empty segments (more segments than rows, including entirely empty
    /// tables) must behave identically on both paths.
    #[test]
    fn empty_segments_behave_identically(
        rows in 0usize..4,
        segments in 5usize..9,
    ) {
        let points: Vec<(f64, [f64; 3])> =
            (0..rows).map(|i| (i as f64, [1.0, i as f64, 0.5])).collect();
        let table = labeled_table(&points, None, segments, 8);
        let (chunked, row_based) = executors();

        let sum_c = chunked.aggregate(&table, &SumAggregate::new("y")).unwrap();
        let sum_r = row_based.aggregate(&table, &SumAggregate::new("y")).unwrap();
        prop_assert_eq!(sum_c.to_bits(), sum_r.to_bits());

        let lin_c = LinearRegression::new("y", "x").fit(&dataset(&table, &chunked), &session());
        let lin_r = LinearRegression::new("y", "x").fit(&dataset(&table, &row_based), &session());
        match (lin_c, lin_r) {
            (Ok(a), Ok(b)) => prop_assert_eq!(bits(&a.coef), bits(&b.coef)),
            (Err(_), Err(_)) => {} // empty input errors on both paths
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

// ---------------------------------------------------------------------------
// PR 5 ports: the Apriori support-counting aggregates gained transition_chunk
// overrides over the flattened text[] buffers, and low-rank factorization /
// LDA load their inputs through chunk-level column access with a per-row
// fallback.  Chunked and row-at-a-time execution must stay bit-identical —
// including on NULL-bearing and empty-segment inputs — and the fallback
// loading paths must agree with the fast paths.
// ---------------------------------------------------------------------------

proptest! {
    /// Apriori's two UDAs (level-1 item counts and level-k candidate
    /// supports) run their chunk kernels under the chunked executor and the
    /// per-row transition under row-at-a-time; the mined models must be
    /// identical — itemsets, counts, rules — and NULL-bearing item rows must
    /// error on both paths.
    #[test]
    fn apriori_chunk_path_is_bit_identical(
        baskets in prop::collection::vec(prop::collection::vec(0usize..8, 0..6), 0..50),
        null_every_raw in 0usize..5,
        segments in 1usize..6,
        chunk_capacity in 1usize..16,
    ) {
        use madlib::methods::assoc::Apriori;

        let null_every = (null_every_raw >= 2).then_some(null_every_raw);
        let schema = Schema::new(vec![
            Column::new("tid", ColumnType::Int),
            Column::new("items", ColumnType::TextArray),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for (i, basket) in baskets.iter().enumerate() {
            let items = if null_every.is_some_and(|n| i % n == 0) {
                Value::Null
            } else {
                Value::TextArray(basket.iter().map(|b| format!("item_{b}")).collect())
            };
            table.insert(Row::new(vec![Value::Int(i as i64), items])).unwrap();
        }

        let (chunked, row_based) = executors();
        let apriori = Apriori::new("items", 0.25, 0.5).unwrap().with_max_itemset_size(3);
        let a = apriori.fit(&dataset(&table, &chunked), &session());
        let b = apriori.fit(&dataset(&table, &row_based), &session());
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // NULL-bearing items and empty inputs error on both paths.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Apriori over mostly-empty tables: more segments than rows (empty
    /// segments on every scan) must not perturb the counts on either path.
    #[test]
    fn apriori_empty_segments_behave_identically(
        rows in 0usize..4,
        segments in 5usize..9,
    ) {
        use madlib::methods::assoc::Apriori;

        let schema = Schema::new(vec![
            Column::new("tid", ColumnType::Int),
            Column::new("items", ColumnType::TextArray),
        ]);
        let mut table = Table::new(schema, segments).unwrap();
        for i in 0..rows {
            table
                .insert(Row::new(vec![
                    Value::Int(i as i64),
                    Value::TextArray(vec!["a".to_owned(), format!("b{}", i % 2)]),
                ]))
                .unwrap();
        }
        let (chunked, row_based) = executors();
        let apriori = Apriori::new("items", 0.4, 0.5).unwrap();
        let a = apriori.fit(&dataset(&table, &chunked), &session());
        let b = apriori.fit(&dataset(&table, &row_based), &session());
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {} // the zero-row case errors on both paths
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

/// The low-rank triple loader's chunk fast path (contiguous bigint/bigint/
/// double buffers) and its per-row fallback (taken e.g. when the rating
/// column stores integers) must produce the same triples — and hence, with a
/// fixed seed, the same model.  NULL-bearing id rows error on both executors.
#[test]
fn lowrank_loading_paths_agree() {
    use madlib::methods::factor::LowRankFactorization;

    let double_schema = Schema::new(vec![
        Column::new("user_id", ColumnType::Int),
        Column::new("item_id", ColumnType::Int),
        Column::new("rating", ColumnType::Double),
    ]);
    let int_schema = Schema::new(vec![
        Column::new("user_id", ColumnType::Int),
        Column::new("item_id", ColumnType::Int),
        Column::new("rating", ColumnType::Int),
    ]);
    let mut fast = Table::new(double_schema.clone(), 3).unwrap();
    let mut fallback = Table::new(int_schema, 3).unwrap();
    for i in 0..40i64 {
        let (u, it, r) = (i % 5, i % 7, (i % 3) - 1);
        fast.insert(Row::new(vec![
            Value::Int(u),
            Value::Int(it),
            Value::Double(r as f64),
        ]))
        .unwrap();
        fallback
            .insert(Row::new(vec![Value::Int(u), Value::Int(it), Value::Int(r)]))
            .unwrap();
    }
    let estimator = LowRankFactorization::new("user_id", "item_id", "rating", 2)
        .unwrap()
        .with_epochs(4)
        .with_seed(11);
    let a = estimator
        .fit(&Dataset::from_table(&fast), &session())
        .unwrap();
    let b = estimator
        .fit(&Dataset::from_table(&fallback), &session())
        .unwrap();
    assert_eq!(a, b, "fast-path and fallback loading diverged");

    // NULL ids are a typed error on both executors, not a panic.
    let mut nulls = Table::new(double_schema, 2).unwrap();
    nulls
        .insert(Row::new(vec![
            Value::Null,
            Value::Int(0),
            Value::Double(1.0),
        ]))
        .unwrap();
    let (chunked, row_based) = executors();
    assert!(estimator
        .fit(&dataset(&nulls, &chunked), &session())
        .is_err());
    assert!(estimator
        .fit(&dataset(&nulls, &row_based), &session())
        .is_err());
}

/// LDA's corpus loader: NULL-bearing token rows are a typed error on both
/// executors, and chunk-boundary layout (tiny chunk capacity) does not change
/// the fitted model.
#[test]
fn lda_loading_is_layout_invariant_and_rejects_nulls() {
    use madlib::methods::topic::Lda;

    let schema = Schema::new(vec![
        Column::new("doc", ColumnType::Int),
        Column::new("tokens", ColumnType::TextArray),
    ]);
    let mut wide = Table::new(schema.clone(), 2).unwrap();
    let mut narrow = Table::new(schema.clone(), 2)
        .unwrap()
        .with_chunk_capacity(1)
        .unwrap();
    for i in 0..20i64 {
        let tokens: Vec<String> = (0..4).map(|t| format!("w{}", (i + t) % 6)).collect();
        let row = Row::new(vec![Value::Int(i), Value::TextArray(tokens)]);
        wide.insert(row.clone()).unwrap();
        narrow.insert(row).unwrap();
    }
    let estimator = Lda::new("tokens", 2)
        .unwrap()
        .with_iterations(5)
        .with_seed(2);
    let a = estimator
        .fit(&Dataset::from_table(&wide), &session())
        .unwrap();
    let b = estimator
        .fit(&Dataset::from_table(&narrow), &session())
        .unwrap();
    assert_eq!(a, b, "chunk layout changed the fitted LDA model");

    let mut nulls = Table::new(schema, 2).unwrap();
    nulls
        .insert(Row::new(vec![Value::Int(0), Value::Null]))
        .unwrap();
    let (chunked, row_based) = executors();
    assert!(estimator
        .fit(&dataset(&nulls, &chunked), &session())
        .is_err());
    assert!(estimator
        .fit(&dataset(&nulls, &row_based), &session())
        .is_err());
}

// ---------------------------------------------------------------------------
// PR 7: chunk-range work stealing.  `Executor::with_steal_granularity(
// StealGranularity::ChunkRange)` splits each segment into fixed chunk ranges
// behind a shared stealing cursor, and per-range states are merged back with
// `Aggregate::merge` in range order.  Two properties make that safe:
//
// * The unit decomposition is a pure function of (table, granularity) and
//   never of the worker count, so parallel and serial execution at the same
//   granularity fold the *same* states in the *same* order — bit-identical
//   on arbitrary floating-point data.
// * Relative to whole-segment scanning, only the merge step reassociates
//   additions, so on exact-arithmetic data (integer-valued doubles small
//   enough to round-trip) chunk-range results equal segment-granular and
//   row-at-a-time results exactly, with the same group key order.
// ---------------------------------------------------------------------------

proptest! {
    /// Parallel chunk-range stealing ≡ serial chunk-range execution, bit for
    /// bit, on arbitrary float data — ungrouped aggregates, grouped
    /// aggregates, and a full linear-regression fit.
    #[test]
    fn chunk_range_parallel_equals_serial_bitwise(
        points in prop::collection::vec((0usize..5, -10.0..10.0f64, [-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64]), 1..180),
        segments in 1usize..5,
        chunk_capacity in 1usize..8,
    ) {
        use madlib::engine::StealGranularity;

        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Int),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for (key, y, x) in &points {
            table
                .insert(Row::new(vec![
                    Value::Int(*key as i64),
                    Value::Double(*y),
                    Value::DoubleArray(x.to_vec()),
                ]))
                .unwrap();
        }
        let par = Executor::new().with_steal_granularity(StealGranularity::ChunkRange);
        let ser = Executor::serial().with_steal_granularity(StealGranularity::ChunkRange);

        let sum_p = par.aggregate(&table, &SumAggregate::new("y")).unwrap();
        let sum_s = ser.aggregate(&table, &SumAggregate::new("y")).unwrap();
        prop_assert_eq!(sum_p.to_bits(), sum_s.to_bits());
        let avg_p = par.aggregate(&table, &AvgAggregate::new("y")).unwrap();
        let avg_s = ser.aggregate(&table, &AvgAggregate::new("y")).unwrap();
        prop_assert_eq!(avg_p.map(f64::to_bits), avg_s.map(f64::to_bits));

        let grouped_sum = |exec: &Executor| {
            dataset(&table, exec)
                .group_by(["grp"])
                .aggregate_per_group(&SumAggregate::new("y"))
                .unwrap()
        };
        let gp = grouped_sum(&par);
        let gs = grouped_sum(&ser);
        prop_assert_eq!(gp.len(), gs.len());
        for ((ka, va), (kb, vb)) in gp.iter().zip(&gs) {
            prop_assert!(ka == kb, "keys diverge: {:?} vs {:?}", ka, kb);
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }

        let fit = |exec: &Executor| {
            LinearRegression::new("y", "x").fit(&dataset(&table, exec), &session())
        };
        match (fit(&par), fit(&ser)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(bits(&a.coef), bits(&b.coef));
                prop_assert_eq!(a.r2.to_bits(), b.r2.to_bits());
            }
            (Err(_), Err(_)) => {} // singular tiny inputs fail on both
            (a, b) => prop_assert!(false, "paths disagree: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// On exact-arithmetic data, chunk-range stealing equals segment-granular
    /// stealing *and* the row-at-a-time scan exactly — values, group keys and
    /// key order — because only the merge step's reassociation could ever
    /// differ, and integer-valued doubles make it exact.  Also pins the
    /// row-at-a-time + chunk-range combination, which must quietly degrade to
    /// segment granularity rather than split a per-row scan.
    #[test]
    fn chunk_range_equals_segment_on_exact_data(
        num_rows in 0usize..200,
        num_groups in 1usize..9,
        segments in 1usize..5,
        chunk_capacity in 1usize..8,
        filtered in any::<bool>(),
    ) {
        use madlib::engine::StealGranularity;

        let schema = Schema::new(vec![
            Column::new("grp", ColumnType::Int),
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        for i in 0..num_rows {
            table
                .insert(Row::new(vec![
                    Value::Int(((i * 7) % num_groups) as i64),
                    Value::Double(((i * 37) % 19) as f64 - 9.0),
                    Value::DoubleArray(vec![1.0, (i % 5) as f64 - 2.0, ((i * 11) % 7) as f64]),
                ]))
                .unwrap();
        }
        let filter = filtered.then(|| Predicate::column_gt("y", 0.0));
        let executors = [
            Executor::new().with_steal_granularity(StealGranularity::ChunkRange),
            Executor::new(), // segment-granular (default)
            Executor::row_at_a_time(),
            Executor::row_at_a_time().with_steal_granularity(StealGranularity::ChunkRange),
        ];
        let grouped_ds = |exec: &Executor| {
            let mut ds = dataset(&table, exec).group_by(["grp"]);
            if let Some(pred) = &filter {
                ds = ds.filter(pred.clone());
            }
            ds
        };
        let scan = LinregrStateProbe(LinearRegression::new("y", "x"));
        let reference_counts = grouped_ds(&executors[0])
            .aggregate_per_group(&CountAggregate)
            .unwrap();
        let reference_states = grouped_ds(&executors[0]).aggregate_per_group(&scan).unwrap();
        let reference_sum = executors[0].aggregate(&table, &SumAggregate::new("y")).unwrap();
        for exec in &executors[1..] {
            let counts = grouped_ds(exec).aggregate_per_group(&CountAggregate).unwrap();
            prop_assert_eq!(&counts, &reference_counts);
            let states = grouped_ds(exec).aggregate_per_group(&scan).unwrap();
            prop_assert_eq!(&states, &reference_states);
            let sum = exec.aggregate(&table, &SumAggregate::new("y")).unwrap();
            prop_assert_eq!(sum.to_bits(), reference_sum.to_bits());
        }
    }

    /// `map_chunks` always runs at chunk-range granularity; its concatenated
    /// output must be independent of parallelism and identical to the
    /// table's serial chunk layout.
    #[test]
    fn map_chunks_output_is_parallelism_invariant(
        num_rows in 0usize..150,
        segments in 1usize..6,
        chunk_capacity in 1usize..8,
    ) {
        let points: Vec<(f64, [f64; 3])> = (0..num_rows)
            .map(|i| (i as f64, [1.0, (i % 9) as f64, 0.25 * i as f64]))
            .collect();
        let table = labeled_table(&points, None, segments, chunk_capacity);
        let map = |exec: &Executor| {
            dataset(&table, exec)
                .map_chunks(|chunk, _schema| Ok(vec![chunk.len()]))
                .unwrap()
        };
        let par = map(&Executor::new());
        let ser = map(&Executor::serial());
        prop_assert_eq!(&par, &ser);
        prop_assert_eq!(par.iter().sum::<usize>(), num_rows);
        // Chunk sizes follow the serial insert layout: every chunk is full
        // except possibly the last chunk of each segment.
        prop_assert!(par.iter().all(|&len| len <= chunk_capacity));
    }
}

/// Every `Estimator` impl in the workspace rejects an empty dataset with a
/// typed `MethodError` instead of panicking — the uniform calling convention
/// must fail uniformly too.  (`Profiler` is the deliberate exception: a
/// profile of zero rows is well-defined and reports zero counts.)
#[test]
fn every_estimator_rejects_empty_datasets() {
    use madlib::convex::objectives::LeastSquaresObjective as LsObjective;
    use madlib::convex::IgdEstimator;
    use madlib::methods::assoc::Apriori;
    use madlib::methods::classify::{DecisionTree, LinearSvm, NaiveBayes};
    use madlib::methods::factor::LowRankFactorization;
    use madlib::methods::topic::Lda;
    use madlib::sketch::Profiler;
    use madlib::text::CrfEstimator;

    fn assert_rejects_empty<E>(name: &str, estimator: &E, columns: Vec<Column>)
    where
        E: Estimator,
    {
        let table = Table::new(Schema::new(columns), 3).unwrap();
        for executor in [Executor::new(), Executor::row_at_a_time()] {
            let result = estimator.fit(
                &Dataset::from_table(&table).with_executor(executor),
                &session(),
            );
            assert!(result.is_err(), "{name} accepted an empty dataset");
        }
    }

    let labeled = || {
        vec![
            Column::new("y", ColumnType::Double),
            Column::new("x", ColumnType::DoubleArray),
        ]
    };
    let classed = || {
        vec![
            Column::new("label", ColumnType::Text),
            Column::new("x", ColumnType::DoubleArray),
        ]
    };

    assert_rejects_empty("linregr", &LinearRegression::new("y", "x"), labeled());
    assert_rejects_empty(
        "logregr",
        &madlib::methods::regress::LogisticRegression::new("y", "x"),
        labeled(),
    );
    assert_rejects_empty("kmeans", &KMeans::new("x", 2).unwrap(), labeled());
    assert_rejects_empty("naive_bayes", &NaiveBayes::new("label", "x"), classed());
    assert_rejects_empty("decision_tree", &DecisionTree::new("label", "x"), classed());
    assert_rejects_empty("svm", &LinearSvm::new("y", "x"), labeled());
    assert_rejects_empty(
        "igd",
        &IgdEstimator::new(LsObjective::new("y", "x", 2)),
        labeled(),
    );
    assert_rejects_empty(
        "lowrank",
        &LowRankFactorization::new("user_id", "item_id", "rating", 2).unwrap(),
        vec![
            Column::new("user_id", ColumnType::Int),
            Column::new("item_id", ColumnType::Int),
            Column::new("rating", ColumnType::Double),
        ],
    );
    assert_rejects_empty(
        "lda",
        &Lda::new("tokens", 2).unwrap(),
        vec![Column::new("tokens", ColumnType::TextArray)],
    );
    assert_rejects_empty(
        "apriori",
        &Apriori::new("items", 0.5, 0.5).unwrap(),
        vec![Column::new("items", ColumnType::TextArray)],
    );
    assert_rejects_empty(
        "crf",
        &CrfEstimator::new("observations", "labels", 2, 4),
        vec![
            Column::new("observations", ColumnType::IntArray),
            Column::new("labels", ColumnType::IntArray),
        ],
    );

    // The documented exception: profiling an empty dataset succeeds with
    // zero counts (a profile is a description, not a fitted model).
    let empty = Table::new(Schema::new(labeled()), 3).unwrap();
    let profile = Profiler
        .fit(&Dataset::from_table(&empty), &session())
        .unwrap();
    assert_eq!(profile.row_count, 0);
}
