//! Cross-crate integration tests: the paper's worked examples exercised
//! end-to-end through the facade crate.

use madlib::convex::objectives::LogisticObjective;
use madlib::convex::{ConvexObjective, IgdConfig, IgdRunner, StepSchedule};
use madlib::engine::{row, Column, ColumnType, Database, Dataset, Executor, Schema, Table};
use madlib::methods::cluster::KMeans;
use madlib::methods::datasets;
use madlib::methods::regress::{LinearRegression, LogisticRegression};
use madlib::methods::{Estimator, Session};
use madlib::sketch::profile_table;
use madlib::text::viterbi::viterbi_decode;
use madlib::text::CrfEstimator;

/// Section 4.1: the single-pass linear regression aggregate produces the
/// composite record of the paper's psql example, and the result is invariant
/// to how the table is partitioned across segments.
#[test]
fn paper_section_4_1_linear_regression_record() {
    let schema = Schema::new(vec![
        Column::new("y", ColumnType::Double),
        Column::new("x", ColumnType::DoubleArray),
    ]);
    let mut table = Table::new(schema, 1).unwrap();
    for i in 0..500 {
        let x = i as f64 / 50.0;
        let noise = ((i * 37) % 11) as f64 / 11.0 - 0.5;
        table
            .insert(row![1.7307 + 2.2428 * x + 0.1 * noise, vec![1.0, x]])
            .unwrap();
    }
    let session = Session::in_memory(1).unwrap();
    let single = LinearRegression::new("y", "x")
        .fit(&Dataset::from_table(&table), &session)
        .unwrap();
    assert!((single.coef[0] - 1.7307).abs() < 0.05);
    assert!((single.coef[1] - 2.2428).abs() < 0.01);
    assert!(single.r2 > 0.99);
    assert!(single.condition_no.is_finite());
    assert_eq!(single.coef.len(), single.p_values.len());

    let repartitioned = table.repartition(8).unwrap();
    let parallel = LinearRegression::new("y", "x")
        .fit(&Dataset::from_table(&repartitioned), &session)
        .unwrap();
    for (a, b) in single.coef.iter().zip(&parallel.coef) {
        assert!((a - b).abs() < 1e-9, "partitioning changed the result");
    }
}

/// Section 4.2 + Section 5.1: IRLS (Newton) and the SGD framework fit the
/// same logistic-regression model on the same data and agree on predictions.
#[test]
fn irls_and_sgd_agree_on_logistic_regression() {
    let data = datasets::logistic_regression_data(3_000, 3, 4, 77).unwrap();
    let executor = Executor::new();
    let db = Database::new(4).unwrap();

    let irls = Session::new(db.clone())
        .train(
            &LogisticRegression::new("y", "x"),
            &Dataset::from_table(&data.table),
        )
        .unwrap();

    let objective = LogisticObjective::new("y", "x", 3);
    let sgd = IgdRunner::new(IgdConfig {
        max_epochs: 150,
        tolerance: 1e-9,
        schedule: StepSchedule::InverseSqrt(0.5),
    })
    .run(
        &executor,
        &db,
        &data.table,
        &objective,
        vec![0.0; objective.dimension()],
    )
    .unwrap();

    // Same sign and similar magnitude per coefficient; identical predictions
    // on a probe grid.
    for (a, b) in irls.coef.iter().zip(&sgd.model) {
        assert_eq!(a.signum(), b.signum(), "IRLS {a} vs SGD {b}");
    }
    let mut agreements = 0;
    let mut total = 0;
    for i in -2..=2 {
        for j in -2..=2 {
            for k in -2..=2 {
                let x = [i as f64 * 0.5, j as f64 * 0.5, k as f64 * 0.5];
                let irls_label = irls.predict(&x).unwrap();
                let sgd_score: f64 = x.iter().zip(&sgd.model).map(|(a, b)| a * b).sum();
                if irls_label == (sgd_score >= 0.0) {
                    agreements += 1;
                }
                total += 1;
            }
        }
    }
    assert!(
        agreements as f64 / total as f64 > 0.9,
        "IRLS and SGD disagree on {}/{total} probe points",
        total - agreements
    );
}

/// Section 4.3: the k-means driver recovers planted clusters and cleans up
/// its temp state, end to end through the facade.
#[test]
fn kmeans_pipeline_end_to_end() {
    let data = datasets::gaussian_blobs(600, 3, 4, 0.8, 4, 5).unwrap();
    let session = Session::in_memory(4).unwrap();
    let model = session
        .train(
            &KMeans::new("coords", 3).unwrap().with_seed(11),
            &Dataset::from_table(&data.table),
        )
        .unwrap();
    assert_eq!(model.k(), 3);
    assert!(model.converged);
    for truth in &data.true_centers {
        let nearest = model
            .centroids
            .iter()
            .map(|c| {
                c.iter()
                    .zip(truth)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(nearest < 3.0);
    }
    assert!(
        session.database().list_tables().is_empty(),
        "driver must drop its temp tables"
    );
}

/// Section 3.1.3: the profile module handles an arbitrary schema produced by
/// another part of the library.
#[test]
fn profile_module_over_generated_tables() {
    let data = datasets::linear_regression_data(800, 4, 0.2, 4, 3).unwrap();
    let profile = profile_table(&Executor::new(), &data.table).unwrap();
    assert_eq!(profile.row_count, 800);
    assert_eq!(profile.columns.len(), 2);
    assert_eq!(profile.columns[0].name(), "y");
    assert_eq!(profile.columns[1].name(), "x");
}

/// Section 5 + Section 3.1.3: the profile/sketch pass runs through the shared
/// executor scan pipeline rather than a private row loop.  This is observable
/// behaviour: [`ProfileAggregate`] works with the executor's modes, filters
/// and grouping, and execution statistics confirm the scan was the
/// executor's.
#[test]
fn profile_runs_on_the_shared_scan_pipeline() {
    use madlib::engine::expr::Predicate;
    use madlib::engine::{row, Value};
    use madlib::sketch::{ColumnProfile, MostFrequentValuesAggregate, ProfileAggregate};

    let schema = Schema::new(vec![
        Column::new("amount", ColumnType::Double),
        Column::new("category", ColumnType::Text),
    ]);
    let mut table = Table::new(schema, 4).unwrap();
    for i in 0..400usize {
        let category = if i % 3 == 0 { "a" } else { "b" };
        table.insert(row![i as f64, category]).unwrap();
    }

    // The profile is an ordinary aggregate on the pipeline: it composes with
    // filters and reports the executor's scan statistics.
    let executor = Executor::new();
    let aggregate = ProfileAggregate::new(table.schema());
    let filter = Predicate::column_lt("amount", 100.0);
    let (profile, stats) = executor
        .aggregate_with_stats(&table, &aggregate, Some(&filter))
        .unwrap();
    assert_eq!(stats.rows_scanned, 400);
    assert_eq!(stats.rows_aggregated, 100);
    assert_eq!(stats.segments, 4);
    assert_eq!(profile.row_count, 100);
    match &profile.columns[0] {
        ColumnProfile::Numeric { summary, .. } => {
            assert_eq!(summary.count(), 100);
            assert_eq!(summary.max(), Some(99.0));
        }
        other => panic!("expected numeric profile, got {other:?}"),
    }

    // Chunked and row-at-a-time execution agree on every exact field.
    let chunked = profile_table(&Executor::new(), &table).unwrap();
    let by_rows = profile_table(&Executor::row_at_a_time(), &table).unwrap();
    assert_eq!(chunked.row_count, by_rows.row_count);
    match (&chunked.columns[1], &by_rows.columns[1]) {
        (
            ColumnProfile::Categorical {
                non_null: a,
                distinct_exact: da,
                most_common: ca,
                ..
            },
            ColumnProfile::Categorical {
                non_null: b,
                distinct_exact: db,
                most_common: cb,
                ..
            },
        ) => {
            assert_eq!((a, da, ca), (b, db, cb));
        }
        other => panic!("expected categorical profiles, got {other:?}"),
    }

    // Sketch adapters also compose with the pipeline's grouping — one MFV
    // sketch per group in a single pass.
    let grouped = Dataset::from_table(&table)
        .group_by(["category"])
        .aggregate_per_group(&MostFrequentValuesAggregate::new("category", 1))
        .unwrap();
    assert_eq!(grouped.len(), 2);
    assert_eq!(grouped[0].0.clone().into_value(), Value::Text("a".into()));
    assert_eq!(grouped[0].1, vec![("a".to_owned(), 134)]);
    assert_eq!(grouped[1].1, vec![("b".to_owned(), 266)]);

    // And the profile itself can run per group through the same machinery —
    // both directly and as grouped training of the Profiler estimator.
    let profiles_per_group = Session::in_memory(1)
        .unwrap()
        .train_grouped(
            &madlib::sketch::Profiler,
            &Dataset::from_table(&table).group_by(["category"]),
        )
        .unwrap();
    let total: usize = profiles_per_group.iter().map(|(_, p)| p.row_count).sum();
    assert_eq!(total, 400);
}

/// Section 5.2: CRF training via the convex framework feeds Viterbi decoding
/// that recovers the generating labels.
#[test]
fn crf_training_and_viterbi_recover_generator_labels() {
    let schema = Schema::new(vec![
        Column::new("observations", ColumnType::IntArray),
        Column::new("labels", ColumnType::IntArray),
    ]);
    let mut corpus = Table::new(schema, 4).unwrap();
    for s in 0..60usize {
        let mut observations = Vec::new();
        let mut labels = Vec::new();
        for t in 0..8 {
            let label = (t + s) % 2;
            observations.push((label * 2 + s % 2) as i64);
            labels.push(label as i64);
        }
        corpus
            .insert(madlib::engine::Row::new(vec![
                madlib::engine::Value::IntArray(observations),
                madlib::engine::Value::IntArray(labels),
            ]))
            .unwrap();
    }
    let crf = Session::in_memory(4)
        .unwrap()
        .train(
            &CrfEstimator::new("observations", "labels", 2, 4).with_epochs(40),
            &Dataset::from_table(&corpus),
        )
        .unwrap();
    let (decoded, _) = viterbi_decode(&crf, &[0, 2, 1, 3, 0, 2]).unwrap();
    assert_eq!(decoded, vec![0, 1, 0, 1, 0, 1]);
}
