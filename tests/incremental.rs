//! Incremental-maintenance equivalence properties.
//!
//! The streaming-ingest contract: a model refreshed from appends only must
//! agree with a full retrain over the grown table.  For single-pass
//! algebraic estimators (linear regression, naive Bayes, the profiler) and
//! for raw materialized aggregates the agreement is *bit-for-bit* — the
//! materialized view replays the executor's exact merge structure, and
//! `transition_chunk` is bit-identical to per-row transitions, so absorbing
//! rows in any installment pattern (mid-chunk, across chunk boundaries,
//! across segments) cannot perturb a single bit.  These properties drive
//! randomized installment schedules, tiny chunk capacities, NULL-bearing
//! appends, filters, grouped views and both execution modes through that
//! contract.  For the iterative IRLS solver the refresh warm-starts from the
//! previous model instead: same optimum within the solver's convergence
//! tolerance (documented on `with_initial_coefficients`), not bit-identity.

use madlib::engine::aggregate::{AvgAggregate, SumAggregate};
use madlib::engine::expr::Predicate;
use madlib::engine::{
    row, Column, ColumnType, Database, Dataset, Executor, MaterializedAggregate, Row, Schema,
    Table, Value,
};
use madlib::methods::classify::NaiveBayes;
use madlib::methods::datasets::labeled_point_schema;
use madlib::methods::regress::{LinearRegression, LogisticRegression};
use madlib::methods::Session;
use madlib::sketch::{ProfileAggregate, Profiler};
use proptest::prelude::*;

/// The two execution paths under comparison.
fn executor(row_mode: bool) -> Executor {
    if row_mode {
        Executor::row_at_a_time()
    } else {
        Executor::new()
    }
}

/// A session over a catalog holding `points` as table `"events"`, split so
/// that `pending` installments remain to be appended after the initial
/// training pass.  Tiny chunk capacities force every installment pattern to
/// cross chunk boundaries.
fn ingest_session(
    schema: Schema,
    rows: Vec<Row>,
    initial: usize,
    segments: usize,
    chunk_capacity: usize,
    exec: Executor,
) -> (Session, Vec<Row>) {
    let mut table = Table::new(schema, segments)
        .unwrap()
        .with_chunk_capacity(chunk_capacity)
        .unwrap();
    let mut rows = rows;
    let pending = rows.split_off(initial.min(rows.len()));
    for row in rows {
        table.insert(row).unwrap();
    }
    let db = Database::new(segments).unwrap();
    db.register_table("events", table).unwrap();
    (Session::new(db).with_executor(exec), pending)
}

fn labeled_rows(points: &[(f64, f64, f64)]) -> Vec<Row> {
    points
        .iter()
        .map(|&(y, x1, x2)| row![y, vec![1.0, x1, x2]])
        .collect()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Splits `pending` into `installments` consecutive batches (sizes derived
/// from the proptest-driven `cuts`), always ending with everything appended.
fn installment_sizes(total: usize, cuts: &[usize]) -> Vec<usize> {
    if total == 0 {
        return Vec::new();
    }
    let mut sizes = Vec::new();
    let mut left = total;
    for &cut in cuts {
        if left == 0 {
            break;
        }
        let take = (cut % left.max(1)).max(1).min(left);
        sizes.push(take);
        left -= take;
    }
    if left > 0 {
        sizes.push(left);
    }
    sizes
}

proptest! {
    /// Linear regression: train, then append in randomized installments,
    /// refreshing after each — every refreshed model must be bit-identical
    /// to retraining from scratch on the grown table, in both execution
    /// modes.  This is the paper's algebraic transition/merge/final contract
    /// applied to ingest: the materialized `XᵀX`/`Xᵀy` states absorb only
    /// the appended rows.
    #[test]
    fn linregr_refresh_is_bit_identical_to_retrain(
        points in prop::collection::vec((-10.0..10.0f64, -5.0..5.0f64, -5.0..5.0f64), 8..80),
        initial_fraction in 1usize..8,
        cuts in prop::collection::vec(1usize..40, 0..3),
        segments in 1usize..4,
        chunk_capacity in 2usize..9,
        row_mode in any::<bool>(),
    ) {
        let initial = (points.len() * initial_fraction / 8).max(4);
        let (session, pending) = ingest_session(
            labeled_point_schema(),
            labeled_rows(&points),
            initial,
            segments,
            chunk_capacity,
            executor(row_mode),
        );
        let estimator = LinearRegression::new("y", "x");
        session.train_incremental(&estimator, "events", "m").unwrap();

        let mut offset = 0usize;
        for size in installment_sizes(pending.len(), &cuts) {
            let batch = pending[offset..offset + size].to_vec();
            offset += size;
            session.database().append_rows("events", batch).unwrap();

            let refreshed = session.refresh(&estimator, "events", "m").unwrap();
            let retrained = session
                .train(&estimator, &session.dataset("events").unwrap())
                .unwrap();
            prop_assert_eq!(bits(&refreshed.coef), bits(&retrained.coef));
            prop_assert_eq!(refreshed.r2.to_bits(), retrained.r2.to_bits());
            prop_assert_eq!(bits(&refreshed.std_err), bits(&retrained.std_err));
            prop_assert_eq!(refreshed.num_rows, retrained.num_rows);
        }
    }

    /// Naive Bayes: the same append-then-refresh ≡ retrain bit-identity for
    /// the per-class count/sum/sum-of-squares states.
    #[test]
    fn naive_bayes_refresh_is_bit_identical_to_retrain(
        points in prop::collection::vec((0u8..3, -5.0..5.0f64, -5.0..5.0f64), 10..60),
        initial_fraction in 1usize..8,
        cuts in prop::collection::vec(1usize..40, 0..3),
        segments in 1usize..4,
        chunk_capacity in 2usize..9,
        row_mode in any::<bool>(),
    ) {
        let schema = Schema::new(vec![
            Column::new("label", ColumnType::Text),
            Column::new("x", ColumnType::DoubleArray),
        ]);
        let rows: Vec<Row> = points
            .iter()
            .map(|&(class, a, b)| row![format!("c{class}"), vec![a, b]])
            .collect();
        let initial = (points.len() * initial_fraction / 8).max(4);
        let (session, pending) = ingest_session(
            schema,
            rows,
            initial,
            segments,
            chunk_capacity,
            executor(row_mode),
        );
        let estimator = NaiveBayes::new("label", "x");
        session.train_incremental(&estimator, "events", "nb").unwrap();

        let mut offset = 0usize;
        for size in installment_sizes(pending.len(), &cuts) {
            let batch = pending[offset..offset + size].to_vec();
            offset += size;
            session.database().append_rows("events", batch).unwrap();

            let refreshed = session.refresh(&estimator, "events", "nb").unwrap();
            let retrained = session
                .train(&estimator, &session.dataset("events").unwrap())
                .unwrap();
            prop_assert_eq!(refreshed, retrained);
        }
    }

    /// The profiler: append-then-refresh of the templated per-column profile
    /// (summaries, quantile sketches, FM/CM sketches, frequency tables) —
    /// with NULL-bearing appends — must reproduce the from-scratch profile
    /// exactly.  `Debug` for `f64` round-trips, so equal renderings mean
    /// bit-equal statistics.
    #[test]
    fn profile_refresh_matches_full_reprofile(
        points in prop::collection::vec((-100.0..100.0f64, 0u8..4, any::<bool>()), 10..60),
        initial_fraction in 1usize..8,
        cuts in prop::collection::vec(1usize..40, 0..3),
        segments in 1usize..4,
        chunk_capacity in 2usize..9,
        row_mode in any::<bool>(),
    ) {
        let schema = Schema::new(vec![
            Column::new("amount", ColumnType::Double),
            Column::new("category", ColumnType::Text),
        ]);
        let rows: Vec<Row> = points
            .iter()
            .map(|&(v, c, null)| {
                if null {
                    Row::new(vec![Value::Null, Value::Null])
                } else {
                    row![v, format!("cat{c}")]
                }
            })
            .collect();
        let initial = (points.len() * initial_fraction / 8).max(2);
        let (session, pending) = ingest_session(
            schema,
            rows,
            initial,
            segments,
            chunk_capacity,
            executor(row_mode),
        );
        session.train_incremental(&Profiler, "events", "profile").unwrap();

        let mut offset = 0usize;
        for size in installment_sizes(pending.len(), &cuts) {
            let batch = pending[offset..offset + size].to_vec();
            offset += size;
            session.database().append_rows("events", batch).unwrap();

            let refreshed = session.refresh(&Profiler, "events", "profile").unwrap();
            let scratch = session
                .train(&Profiler, &session.dataset("events").unwrap())
                .unwrap();
            prop_assert_eq!(format!("{refreshed:?}"), format!("{scratch:?}"));
        }
    }

    /// Raw materialized aggregates with the dimensions the Session API does
    /// not expose: a filter, a grouped view, and NULL-bearing appends.  The
    /// view's `finalize`/`finalize_grouped` must stay bit-identical to
    /// running the equivalent `Dataset` aggregate from scratch after every
    /// installment, in both execution modes.
    #[test]
    fn filtered_and_grouped_views_absorb_bit_identically(
        points in prop::collection::vec((-10.0..10.0f64, 0u8..3, any::<bool>()), 6..60),
        initial_fraction in 1usize..8,
        cuts in prop::collection::vec(1usize..40, 0..3),
        segments in 1usize..4,
        chunk_capacity in 2usize..7,
        row_mode in any::<bool>(),
    ) {
        let schema = Schema::new(vec![
            Column::new("v", ColumnType::Double),
            Column::new("g", ColumnType::Text),
        ]);
        let rows: Vec<Row> = points
            .iter()
            .map(|&(v, g, null)| {
                if null {
                    Row::new(vec![Value::Null, Value::Text(format!("g{g}"))])
                } else {
                    row![v, format!("g{g}")]
                }
            })
            .collect();
        let exec = executor(row_mode);
        let initial = (points.len() * initial_fraction / 8).max(1);
        let mut table = Table::new(schema, segments)
            .unwrap()
            .with_chunk_capacity(chunk_capacity)
            .unwrap();
        let mut rows = rows;
        let pending = rows.split_off(initial.min(rows.len()));
        for row in rows {
            table.insert(row).unwrap();
        }

        let filter = Predicate::column_gt("v", 0.0);
        let mut filtered = MaterializedAggregate::new(SumAggregate::new("v"), &exec)
            .with_filter(filter.clone());
        let mut grouped = MaterializedAggregate::new(AvgAggregate::new("v"), &exec)
            .with_group_columns(["g"]);
        filtered.absorb(&table).unwrap();
        grouped.absorb(&table).unwrap();

        let mut offset = 0usize;
        for size in installment_sizes(pending.len(), &cuts) {
            for row in &pending[offset..offset + size] {
                table.insert(row.clone()).unwrap();
            }
            offset += size;
            filtered.absorb(&table).unwrap();
            grouped.absorb(&table).unwrap();

            let sum_scratch = Dataset::from_table(&table)
                .with_executor(exec)
                .filter(filter.clone())
                .aggregate(&SumAggregate::new("v"))
                .unwrap();
            prop_assert_eq!(
                filtered.finalize().unwrap().to_bits(),
                sum_scratch.to_bits()
            );

            let avg_scratch = Dataset::from_table(&table)
                .with_executor(exec)
                .group_by(["g"])
                .aggregate_per_group(&AvgAggregate::new("v"))
                .unwrap();
            let avg_view = grouped.finalize_grouped().unwrap();
            prop_assert_eq!(avg_view.len(), avg_scratch.len());
            for ((vk, vv), (sk, sv)) in avg_view.iter().zip(&avg_scratch) {
                prop_assert_eq!(vk, sk);
                prop_assert_eq!(vv.map(f64::to_bits), sv.map(f64::to_bits));
            }
        }
    }

    /// IRLS warm-start: refreshing a logistic model after an append re-fits
    /// seeded from the previous coefficients.  Newton's method on the
    /// ridge-stabilized objective converges to the same optimum from any
    /// start, so warm and cold fits agree within the documented convergence
    /// tolerance — and the warm start never needs more iterations.
    #[test]
    fn irls_warm_start_matches_cold_start_within_tolerance(
        seed_points in prop::collection::vec((-4.0..4.0f64, -4.0..4.0f64), 30..80),
        append_count in 1usize..6,
        segments in 1usize..4,
    ) {
        let rows: Vec<Row> = seed_points
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                // Deterministic logistic labels: compare σ(score) against a
                // hash-style pseudo-uniform draw so the classes overlap (a
                // separable sample would push IRLS toward infinite
                // coefficients and spoil the convergence comparison).
                // Index-dependent jitter keeps the design matrix well
                // conditioned even when proptest samples degenerate
                // (constant) point clouds.
                let a = a + 0.05 * ((i as f64) * 1.7).sin();
                let b = b + 0.05 * ((i as f64) * 2.3).cos();
                let score = 1.5 * a - b;
                let probability = 1.0 / (1.0 + (-score).exp());
                let draw = ((i as f64 + 1.0).sin() * 43_758.545_3).fract().abs();
                row![f64::from(u8::from(probability > draw)), vec![1.0, a, b]]
            })
            .collect();
        let total = rows.len();
        let (session, pending) = ingest_session(
            labeled_point_schema(),
            rows,
            total - append_count,
            segments,
            64,
            Executor::new(),
        );
        let estimator = LogisticRegression::new("y", "x");
        session.train_incremental(&estimator, "events", "lr").unwrap();

        session.database().append_rows("events", pending).unwrap();
        let warm = session.refresh(&estimator, "events", "lr").unwrap();
        let cold = session
            .train(&estimator, &session.dataset("events").unwrap())
            .unwrap();
        // A (near-)separable sample pushes IRLS toward infinite coefficients
        // and neither fit converges — the warm/cold comparison is only
        // meaningful at an interior optimum.
        prop_assume!(warm.converged && cold.converged);
        prop_assert!(warm.num_iterations <= cold.num_iterations);
        for (w, c) in warm.coef.iter().zip(&cold.coef) {
            prop_assert!(
                (w - c).abs() <= 1e-4 * (1.0 + c.abs()),
                "warm {:?} vs cold {:?}", warm.coef, cold.coef
            );
        }
    }
}

/// `Database::append_rows` drives registered views automatically: after an
/// auto-absorbing append, a refresh is a pure re-finalize and still lands on
/// the retrained model bit-for-bit.
#[test]
fn append_rows_auto_absorbs_registered_views() {
    let db = Database::new(2).unwrap();
    let mut table = Table::new(labeled_point_schema(), 2)
        .unwrap()
        .with_chunk_capacity(4)
        .unwrap();
    for i in 0..20 {
        let x = f64::from(i) * 0.3 - 3.0;
        table.insert(row![2.0 * x + 1.0, vec![1.0, x]]).unwrap();
    }
    db.register_table("events", table).unwrap();
    let session = Session::new(db);
    let estimator = LinearRegression::new("y", "x");
    session
        .train_incremental(&estimator, "events", "m")
        .unwrap();

    let appended: Vec<Row> = (20..23)
        .map(|i| {
            let x = f64::from(i) * 0.3 - 3.0;
            row![2.0 * x + 1.0, vec![1.0, x]]
        })
        .collect();
    session.database().append_rows("events", appended).unwrap();

    let refreshed = session.refresh(&estimator, "events", "m").unwrap();
    let retrained = session
        .train(&estimator, &session.dataset("events").unwrap())
        .unwrap();
    assert_eq!(refreshed.num_rows, 23);
    assert_eq!(bits(&refreshed.coef), bits(&retrained.coef));

    // The refreshed model replaced the cataloged one.
    let cataloged = session
        .database()
        .models()
        .get::<madlib::methods::regress::LinearRegressionModel>("m")
        .unwrap();
    assert_eq!(bits(&cataloged.coef), bits(&refreshed.coef));
}

/// A shrunk (truncated) source table is detected and the view rebuilds from
/// scratch instead of serving stale states.
#[test]
fn truncation_between_refreshes_rebuilds_the_view() {
    let db = Database::new(1).unwrap();
    let mut table = Table::new(labeled_point_schema(), 1)
        .unwrap()
        .with_chunk_capacity(4)
        .unwrap();
    for i in 0..12 {
        let x = f64::from(i) * 0.5;
        table.insert(row![3.0 * x - 2.0, vec![1.0, x]]).unwrap();
    }
    db.register_table("events", table).unwrap();
    let session = Session::new(db);
    let estimator = LinearRegression::new("y", "x");
    session
        .train_incremental(&estimator, "events", "m")
        .unwrap();

    // Truncate and refill with different data.
    session
        .database()
        .with_table_mut("events", |t| {
            t.truncate();
            for i in 0..7 {
                let x = f64::from(i) * 0.5;
                t.insert(row![4.0 - x, vec![1.0, x]])?;
            }
            Ok(())
        })
        .unwrap();

    let refreshed = session.refresh(&estimator, "events", "m").unwrap();
    let retrained = session
        .train(&estimator, &session.dataset("events").unwrap())
        .unwrap();
    assert_eq!(refreshed.num_rows, 7);
    assert_eq!(bits(&refreshed.coef), bits(&retrained.coef));
}

/// Grouped profile views and ungrouped sum views under `MADLIB_SIMD=off
/// MADLIB_THREADS=1` run through exactly the same absorb code, so the CI's
/// second pass re-executes every property above in the scalar/serial tier;
/// this deterministic smoke covers the `ProfileAggregate` view type used by
/// `Profiler::train_incremental` directly at the engine level.
#[test]
fn profile_view_absorbs_installments_exactly() {
    let schema = Schema::new(vec![
        Column::new("amount", ColumnType::Double),
        Column::new("category", ColumnType::Text),
    ]);
    let exec = Executor::new();
    let mut table = Table::new(schema.clone(), 2)
        .unwrap()
        .with_chunk_capacity(3)
        .unwrap();
    let mut view = MaterializedAggregate::new(ProfileAggregate::new(&schema), &exec);
    for installment in 0..5 {
        for i in 0..(installment * 3 + 1) {
            let v = f64::from(installment * 10 + i);
            if i % 4 == 3 {
                table
                    .insert(Row::new(vec![Value::Null, Value::Null]))
                    .unwrap();
            } else {
                table.insert(row![v, format!("cat{}", i % 3)]).unwrap();
            }
        }
        view.absorb(&table).unwrap();
        let scratch = Dataset::from_table(&table)
            .with_executor(exec)
            .aggregate(&ProfileAggregate::new(&schema))
            .unwrap();
        assert_eq!(
            format!("{:?}", view.finalize().unwrap()),
            format!("{scratch:?}")
        );
    }
}
